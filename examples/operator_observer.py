#!/usr/bin/env python3
"""The network operator's view: on-path spin-bit measurement.

The paper motivates the spin bit as a tool for operators who cannot see
QUIC's encrypted transport headers.  This example plays that role: a
:class:`~repro.core.wire_observer.WireObserver` taps the raw datagrams
of a connection (like a middlebox or the P4 hardware observer of Kunze
et al. 2021), parses QUIC headers itself, reconstructs packet numbers,
and measures the RTT from spin edges — then compares against the
client's qlog ground truth, including a run with the Valid Edge Counter
extension enabled.

Run:  python examples/operator_observer.py
"""

from repro._util.rng import derive_rng
from repro.core.observer import observe_recorder
from repro.core.spin import SpinPolicy
from repro.core.wire_observer import WireObserver
from repro.netsim.delays import UniformDelay
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.web.http3 import ResponsePlan, run_exchange


def observe(enable_vec: bool, reorder: float = 0.0) -> None:
    observer = WireObserver(short_dcid_length=8)
    plan = ResponsePlan(
        server_header="LiteSpeed", think_time_ms=40.0, write_sizes=(240_000,)
    )
    path = PathProfile(
        propagation_delay_ms=30.0,
        reorder_probability=reorder,
        # Displacements comparable to the RTT are the ones that cross
        # spin phase boundaries and fabricate edges (paper Fig. 1b).
        reorder_extra_delay=UniformDelay(20.0, 70.0),
    )
    config = ConnectionConfig(enable_vec=enable_vec)
    result = run_exchange(
        "www.operator-view.test",
        plan,
        SpinPolicy.SPIN,
        SpinPolicy.SPIN,
        path,
        path,
        derive_rng(7, "operator", enable_vec, reorder),
        client_config=config,
        server_config=config,
        wire_observer=observer,
    )
    stats = observer.stats
    print(f"  tapped {stats.datagrams} datagrams / {stats.packets} packets "
          f"({stats.short_header_packets} short-header)")

    wire = observer.observation()
    qlog = observe_recorder(result.recorder)
    print(f"  wire-observer RTT samples: "
          f"{[round(s, 1) for s in wire.rtts_received_ms[:8]]}")
    print(f"  qlog-replay RTT samples:   "
          f"{[round(s, 1) for s in qlog.rtts_received_ms[:8]]}")
    if enable_vec:
        vec_rtts = observer.vec_rtts_ms(threshold=3)
        print(f"  VEC-validated samples:     "
              f"{[round(s, 1) for s in vec_rtts[:8]]}")


def main() -> None:
    print("clean path, RFC 9000 spin bit only:")
    observe(enable_vec=False)
    print("\nclean path, three-bit variant (spin + VEC):")
    observe(enable_vec=True)
    print("\nheavily reordered path (VEC rejects the spurious edges):")
    observe(enable_vec=True, reorder=0.03)


if __name__ == "__main__":
    main()
