#!/usr/bin/env python3
"""qlog artifact round-trip: capture, store, reload, analyze.

The paper releases its raw spin-bit measurement data as qlog-derived
per-connection records (Appendix B).  This example scans a handful of
domains with full qlog capture enabled, writes one qlog JSON file per
connection to a temporary directory, then re-reads the files and runs
the spin observer and grease filter on the reloaded traces — the same
path an external analyst would take with the released artifacts.

Run:  python examples/qlog_artifacts.py
"""

import json
import tempfile
from pathlib import Path

from repro.core.classify import classify_connection
from repro.core.observer import observe_recorder
from repro.internet.population import PopulationConfig, build_population
from repro.qlog.reader import read_qlog
from repro.web.scanner import ScanConfig, Scanner


def main() -> None:
    population = build_population(
        PopulationConfig(toplist_domains=0, czds_domains=1_500, seed=31)
    )
    scanner = Scanner(population, ScanConfig(qlog_sample_rate=1.0))
    dataset = scanner.scan(week_label="cw20-2023", ip_version=4)

    captured = [c for c in dataset.connection_records() if c.qlog is not None]
    print(f"captured {len(captured)} qlog documents")

    with tempfile.TemporaryDirectory(prefix="spinbit-qlogs-") as tmp:
        directory = Path(tmp)
        for index, record in enumerate(captured):
            path = directory / f"conn-{index:05d}.qlog"
            path.write_text(json.dumps(record.qlog))
        files = sorted(directory.glob("*.qlog"))
        print(f"wrote {len(files)} files to {directory}")

        spinning = 0
        for path in files:
            with path.open() as stream:
                recorder = read_qlog(stream)
            observation = observe_recorder(recorder)
            behaviour = classify_connection(observation, recorder.stack_rtts_ms())
            if behaviour.value == "spin":
                spinning += 1
                domain = recorder.metadata.get("domain", "?")
                samples = [round(s, 1) for s in observation.rtts_received_ms[:4]]
                print(f"  {domain}: spin RTT samples {samples} ms "
                      f"(stack min "
                      f"{min(recorder.stack_rtts_ms() or [float('nan')]):.1f} ms)")

        print(f"\n{spinning} of {len(files)} reloaded connections classified "
              f"as spinning — identical to the live classification: "
              f"{sum(1 for c in captured if c.behaviour.value == 'spin')}")


if __name__ == "__main__":
    main()
