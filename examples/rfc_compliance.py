#!/usr/bin/env python3
"""Longitudinal RFC-compliance study: the paper's Figure 2.

Selects 12 measurement weeks spread across the CW 15/2022 - CW 20/2023
campaign, scans the same QUIC-enabled domains every week, keeps those
that spun at least once and connected every week, and histograms the
number of weeks with spin activity against the RFC 9000 (1-in-16) and
RFC 9312 (1-in-8) theoretical reference curves.

Run:  python examples/rfc_compliance.py [n_czds_domains]
"""

import sys

from repro.analysis.compliance import compliance_histogram
from repro.analysis.report import render_compliance_histogram
from repro.campaign.runner import CampaignRunner
from repro.campaign.schedule import DEFAULT_CAMPAIGN
from repro.internet.population import PopulationConfig, build_population


def main() -> None:
    czds = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    population = build_population(
        PopulationConfig(toplist_domains=0, czds_domains=czds, seed=17)
    )
    runner = CampaignRunner(population, DEFAULT_CAMPAIGN)

    quic_domains = [d for d in population.domains if d.quic_enabled]
    print(f"{len(quic_domains)} QUIC-enabled domains; scanning them in 12 "
          f"weeks spread across {DEFAULT_CAMPAIGN.first.label} .. "
          f"{DEFAULT_CAMPAIGN.last.label} ...")
    result = runner.run_longitudinal(12, domains=quic_domains)

    histogram = compliance_histogram(result)
    print()
    print(render_compliance_histogram(histogram))

    print(f"\nshare spinning in all 12 weeks: "
          f"{histogram.share_spinning_every_week * 100:.1f} % "
          f"(RFC 9000 reference: {histogram.rfc9000_shares[-1] * 100:.1f} %, "
          f"RFC 9312: {histogram.rfc9312_shares[-1] * 100:.1f} %)")
    if histogram.share_spinning_every_week < histogram.rfc9000_shares[-1]:
        print("→ domains spin less than the RFC mandate allows: the "
              "1-in-16 disable rule appears to be followed (plus "
              "longer-term deployment churn), matching the paper")


if __name__ == "__main__":
    main()
