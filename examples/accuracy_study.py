#!/usr/bin/env python3
"""RTT accuracy study: the paper's Figures 3 and 4 in miniature.

Scans a synthetic population, pools the connections with spin-bit
activity, and prints the absolute-difference and mapped-ratio
histograms for the Spin (R) series, plus the reordering (R vs S) impact
summary of Section 5.2.

Run:  python examples/accuracy_study.py [n_czds_domains]
"""

import sys

from repro.analysis.accuracy import accuracy_study
from repro.analysis.report import render_series_summary
from repro.internet.population import PopulationConfig, build_population
from repro.web.scanner import Scanner


def main() -> None:
    czds = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    population = build_population(
        PopulationConfig(toplist_domains=1_000, czds_domains=czds, seed=5)
    )
    scanner = Scanner(population)

    print("scanning for spinning connections ...")
    dataset = scanner.scan(week_label="cw20-2023", ip_version=4)
    records = dataset.connection_records()

    # Pool two more weeks of the spin-active domains, like the paper's
    # campaign-wide accuracy dataset.
    spin_domains = [r.domain for r in dataset.results if r.shows_spin_activity]
    for label in ("cw18-2023", "cw19-2023"):
        records.extend(
            scanner.scan(week_label=label, domains=spin_domains).connection_records()
        )

    study = accuracy_study(records)
    print()
    print(render_series_summary(study.spin_received))

    impact = study.reordering
    print(f"\nreordering impact (Section 5.2): "
          f"{impact.connections_compared} connections compared, "
          f"{impact.changed_share * 100:.2f} % changed by sorting")
    if impact.connections_changed:
        print(f"  of the changed: {impact.below_1ms_share * 100:.0f} % differ "
              f"by < 1 ms, sorting improves {impact.improved_share * 100:.0f} %")

    grease = study.grease_received
    print(f"\ngrease-filtered connections: {grease.connections}")
    if grease.connections:
        print(f"  underestimating: {grease.underestimate_share * 100:.0f} % "
              f"(the paper suspects these are reordering false positives)")


if __name__ == "__main__":
    main()
