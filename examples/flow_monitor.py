#!/usr/bin/env python3
"""Operator flow monitoring: many concurrent connections, one tap.

Simulates several QUIC connections with different paths and server
behaviours, interleaves their server-to-client datagrams by time (as a
mirror port would deliver them), and feeds the merged stream into a
:class:`~repro.core.flow_table.SpinFlowTable`.  The table demultiplexes
the flows by connection ID, reconstructs packet numbers per flow, and
reports a spin-bit RTT estimate for each — plus a per-connection
timeline for one of them.

Run:  python examples/flow_monitor.py
"""

from repro._util.rng import derive_rng
from repro.analysis.timeline import render_spin_timeline
from repro.core.flow_table import SpinFlowTable
from repro.core.spin import SpinPolicy
from repro.core.wire_observer import Direction, WireObserver
from repro.netsim.path import PathProfile
from repro.web.http3 import ResponsePlan, run_exchange


class _CapturingObserver(WireObserver):
    """A tap that keeps raw (time, datagram) pairs for later merging."""

    def __init__(self):
        super().__init__(short_dcid_length=8)
        self.captured: list[tuple[float, bytes]] = []

    def on_datagram(self, time_ms, direction, data):
        super().on_datagram(time_ms, direction, data)
        if direction == Direction.SERVER_TO_CLIENT:
            self.captured.append((time_ms, data))


def main() -> None:
    scenarios = [
        ("fast CDN-ish server", 8.0, ResponsePlan(
            server_header="Caddy", think_time_ms=15.0, write_sizes=(80_000,))),
        ("EU shared hosting", 22.0, ResponsePlan(
            server_header="LiteSpeed", think_time_ms=70.0,
            write_gaps_ms=(0.0, 180.0, 180.0), write_sizes=(11_000,) * 3)),
        ("US shared hosting", 55.0, ResponsePlan(
            server_header="LiteSpeed", think_time_ms=90.0, write_sizes=(120_000,))),
    ]

    merged: list[tuple[float, bytes]] = []
    recorders = []
    for index, (label, one_way, plan) in enumerate(scenarios):
        tap = _CapturingObserver()
        path = PathProfile(propagation_delay_ms=one_way)
        result = run_exchange(
            f"www.flow-{index}.test",
            plan,
            SpinPolicy.SPIN,
            SpinPolicy.SPIN,
            path,
            path,
            derive_rng(index, "flow-monitor"),
            wire_observer=tap,
        )
        merged.extend(tap.captured)
        recorders.append((label, one_way, result.recorder))

    # The mirror port delivers everything in (global) time order.
    merged.sort(key=lambda item: item[0])
    table = SpinFlowTable(short_dcid_length=8)
    for time_ms, data in merged:
        table.on_server_datagram(time_ms, data)

    print(f"flow table tracked {len(table.flows)} concurrent flows "
          f"from {len(merged)} tapped datagrams:\n")
    for flow in table.all_flows():
        observation = flow.observation()
        if observation.rtts_received_ms:
            mean = sum(observation.rtts_received_ms) / len(observation.rtts_received_ms)
            estimate = f"mean spin RTT {mean:7.1f} ms over {len(observation.rtts_received_ms)} samples"
        else:
            estimate = "no full spin cycle observed"
        print(f"  flow {flow.flow_key}: {flow.packets:3d} packets, {estimate}")

    label, one_way, recorder = recorders[1]
    print(f"\nspin-signal timeline of the '{label}' connection "
          f"(true RTT {2 * one_way:.0f} ms):")
    print(render_spin_timeline(recorder, max_packets=24))


if __name__ == "__main__":
    main()
