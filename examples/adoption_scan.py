#!/usr/bin/env python3
"""Adoption scan: a small-scale rerun of the paper's Tables 1-3.

Builds a synthetic web population (toplists + CZDS zones, hosted across
the calibrated provider catalog), scans every domain with the HTTP/3
scanner, and prints the adoption overview (Table 1), the AS-organization
attribution (Table 2), the spin-configuration table (Table 3), and the
webserver attribution of Section 4.2.

Run:  python examples/adoption_scan.py [n_czds_domains]
"""

import sys

from repro.analysis.asorg import organization_table
from repro.analysis.config import configuration_table
from repro.analysis.report import (
    render_configuration_table,
    render_org_table,
    render_support_overview,
)
from repro.analysis.support import support_overview
from repro.analysis.webserver import webserver_shares
from repro.internet.asdb import build_default_asdb
from repro.internet.population import ListGroup, PopulationConfig, build_population
from repro.web.scanner import Scanner


def main() -> None:
    czds = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    config = PopulationConfig(
        toplist_domains=max(500, czds // 8), czds_domains=czds, seed=20230520
    )
    print(f"building population: {config.toplist_domains} toplist + "
          f"{config.czds_domains} CZDS domains ...")
    population = build_population(config)

    print("scanning (one HTTP/3 fetch chain per domain) ...")
    dataset = Scanner(population).scan(week_label="cw20-2023", ip_version=4)

    print("\n=== Table 1: adoption overview ===")
    print(render_support_overview(support_overview(dataset, population)))

    print("\n=== Table 2: AS organizations (com/net/org) ===")
    cno_names = {d.name for d in population.group_members(ListGroup.COM_NET_ORG)}
    connections = [
        record
        for result in dataset.results
        if result.domain.name in cno_names
        for record in result.connections
    ]
    print(render_org_table(organization_table(connections, build_default_asdb())))

    print("\n=== Table 3: spin configuration ===")
    print(render_configuration_table(configuration_table(dataset, population)))

    print("\n=== Webserver attribution (spinning connections) ===")
    for share in webserver_shares(dataset.connection_records())[:5]:
        print(f"  {share.server_header:30s} {share.connections:6d} "
              f"{share.share * 100:5.1f} %")


if __name__ == "__main__":
    main()
