"""The on-path wire observer (raw-datagram spin measurement)."""

import pytest

from repro._util.rng import derive_rng
from repro.core.observer import observe_recorder
from repro.core.spin import SpinPolicy
from repro.core.wire_observer import Direction, WireObserver
from repro.netsim.delays import ConstantDelay
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.quic.connection_id import ConnectionId
from repro.quic.datagram import QuicPacket, encode_datagram
from repro.quic.frames import PingFrame
from repro.quic.packet import ShortHeader
from repro.web.http3 import ResponsePlan, run_exchange


def run_observed_exchange(seed=1, plan=None, enable_vec=False, server_policy=SpinPolicy.SPIN):
    observer = WireObserver(short_dcid_length=8)
    plan = plan or ResponsePlan(
        server_header="LiteSpeed", think_time_ms=30.0, write_sizes=(40_000,)
    )
    profile = PathProfile(propagation_delay_ms=20.0, jitter=ConstantDelay(0.0))
    config = ConnectionConfig(enable_vec=enable_vec)
    result = run_exchange(
        "www.observed.test",
        plan,
        SpinPolicy.SPIN,
        server_policy,
        profile,
        profile,
        derive_rng(seed, "wire-observer"),
        client_config=config,
        server_config=config,
        wire_observer=observer,
    )
    return observer, result


class TestAgainstQlogObserver:
    def test_same_spin_rtts_as_qlog_replay(self):
        """The middlebox parsing raw bytes must reach the same samples
        as the scanner's qlog-based analysis."""
        observer, result = run_observed_exchange()
        wire = observer.observation()
        qlog = observe_recorder(result.recorder)
        assert wire.rtts_received_ms == pytest.approx(qlog.rtts_received_ms)
        assert wire.values_seen == qlog.values_seen

    def test_packet_number_reconstruction(self):
        observer, result = run_observed_exchange(
            plan=ResponsePlan(server_header="x", write_sizes=(350_000,))
        )
        wire = observer.observation()
        qlog = observe_recorder(result.recorder)
        assert [e.packet_number for e in wire.edges_received] == [
            e.packet_number for e in qlog.edges_received
        ]

    def test_stats_accounting(self):
        observer, _ = run_observed_exchange()
        stats = observer.stats
        assert stats.datagrams > 10
        assert stats.packets >= stats.datagrams  # coalescing
        assert 0 < stats.short_header_packets < stats.packets
        assert stats.parse_errors == 0

    def test_non_spinning_server_shows_all_zero(self):
        observer, _ = run_observed_exchange(server_policy=SpinPolicy.ALWAYS_ZERO)
        assert observer.observation().all_zero


class TestVecOnWire:
    def test_vec_marks_readable_from_raw_bytes(self):
        observer, _ = run_observed_exchange(
            plan=ResponsePlan(server_header="x", write_sizes=(200_000,)),
            enable_vec=True,
        )
        rtts = observer.vec_rtts_ms(threshold=3)
        assert rtts
        assert all(sample >= 35.0 for sample in rtts)

    def test_no_vec_marks_without_extension(self):
        observer, _ = run_observed_exchange(enable_vec=False)
        assert observer.vec_rtts_ms() == []


class TestRobustness:
    def test_garbage_datagrams_counted_not_raised(self):
        observer = WireObserver()
        observer.on_datagram(0.0, Direction.SERVER_TO_CLIENT, b"\x00\x01\x02")
        observer.on_datagram(1.0, Direction.SERVER_TO_CLIENT, b"")
        assert observer.stats.parse_errors == 2
        assert observer.observation().packets_seen == 0

    def test_unknown_direction_rejected(self):
        observer = WireObserver()
        with pytest.raises(ValueError):
            observer.on_datagram(0.0, "sideways", b"")

    def test_client_direction_not_measured(self):
        """Only server-to-client packets feed the RTT estimate."""
        observer = WireObserver(short_dcid_length=8)
        cid = ConnectionId(bytes(8))
        for pn, spin in enumerate([False, True, False, True]):
            packet = QuicPacket(
                header=ShortHeader(destination_cid=cid, packet_number=pn, spin_bit=spin),
                frames=(PingFrame(),),
            )
            observer.on_datagram(
                float(pn * 10), Direction.CLIENT_TO_SERVER, encode_datagram([packet])
            )
        assert observer.observation().packets_seen == 0
        assert observer.stats.short_header_packets == 4
