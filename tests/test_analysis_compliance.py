"""Figure 2: RFC-compliance histogram and reference curves."""

import pytest

from repro._util.stats import binomial_pmf
from repro.analysis.compliance import (
    ComplianceHistogram,
    compliance_histogram,
    rfc_reference_shares,
)
from repro.campaign.runner import LongitudinalResult
from repro.campaign.schedule import CalendarWeek
from repro.internet.population import DomainRecord
from repro.web.scanner import DomainScanResult, ScanDataset

from conftest import make_connection_record
from repro.core.classify import SpinBehaviour


class TestReferenceShares:
    def test_shares_sum_to_one(self):
        for n_disable in (8, 16):
            assert sum(rfc_reference_shares(12, n_disable)) == pytest.approx(1.0)

    def test_rfc9000_peaks_at_all_weeks(self):
        shares = rfc_reference_shares(12, 16)
        assert shares[-1] == max(shares)
        # (15/16)^12 ≈ 0.4614, renormalized over k >= 1.
        raw = binomial_pmf(12, 12, 15 / 16)
        assert shares[-1] == pytest.approx(raw / (1 - binomial_pmf(0, 12, 15 / 16)))

    def test_rfc9312_disables_more(self):
        """One-in-eight disabling spins in all 12 weeks less often than
        one-in-sixteen."""
        assert rfc_reference_shares(12, 8)[-1] < rfc_reference_shares(12, 16)[-1]


def synthetic_longitudinal(week_flags: dict[str, list[bool]], connected: dict[str, list[bool]]):
    """Build a LongitudinalResult from explicit activity matrices."""
    n_weeks = len(next(iter(week_flags.values())))
    weeks = [CalendarWeek(2023, 1 + i) for i in range(n_weeks)]
    datasets = []
    for week_index in range(n_weeks):
        dataset = ScanDataset(week_label=weeks[week_index].label, ip_version=4)
        for name in week_flags:
            domain = DomainRecord(
                name=name, zone="com", in_toplist=False, in_czds=True, resolves=True,
                quic_enabled=True,
            )
            is_connected = connected[name][week_index]
            spins = week_flags[name][week_index]
            connections = []
            if is_connected:
                behaviour = SpinBehaviour.SPIN if spins else SpinBehaviour.ALL_ZERO
                record = make_connection_record(
                    spin_rtts=[40.0] if spins else [],
                    stack_rtts=[38.0],
                    behaviour=behaviour,
                    domain=name,
                )
                if not spins:
                    record.observation.values_seen = {False}
                connections.append(record)
            dataset.results.append(
                DomainScanResult(
                    domain=domain,
                    resolved=is_connected,
                    quic_support=is_connected,
                    connections=connections,
                )
            )
        datasets.append(dataset)
    return LongitudinalResult(weeks=weeks, datasets=datasets)


class TestComplianceHistogram:
    def test_counts_weeks_with_spin(self):
        result = synthetic_longitudinal(
            week_flags={
                "a.com": [True, True, True],   # 3 weeks
                "b.com": [True, False, False],  # 1 week
                "c.com": [False, False, False],  # never: excluded
            },
            connected={
                "a.com": [True] * 3,
                "b.com": [True] * 3,
                "c.com": [True] * 3,
            },
        )
        histogram = compliance_histogram(result)
        assert histogram.considered_domains == 2
        assert histogram.observed_shares == [0.5, 0.0, 0.5]
        assert histogram.share_spinning_every_week == 0.5

    def test_domains_missing_a_week_excluded(self):
        result = synthetic_longitudinal(
            week_flags={"a.com": [True, True], "b.com": [True, True]},
            connected={"a.com": [True, True], "b.com": [True, False]},
        )
        histogram = compliance_histogram(result)
        assert histogram.considered_domains == 1

    def test_cumulative(self):
        histogram = ComplianceHistogram(
            n_weeks=3,
            considered_domains=4,
            observed_shares=[0.25, 0.25, 0.5],
            rfc9000_shares=rfc_reference_shares(3, 16),
            rfc9312_shares=rfc_reference_shares(3, 8),
        )
        assert histogram.observed_cumulative_at_most(2) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            histogram.observed_cumulative_at_most(0)
