"""ConnectionId unit tests, including the randbytes seed-compatibility note.

Seed-compatibility note
-----------------------
``ConnectionId.generate`` draws its bytes with one ``rng.randbytes(n)``
call.  CPython implements ``randbytes(n)`` as a single
``getrandbits(8 * n)`` draw, whereas the previous per-byte loop made
``n`` separate ``getrandbits(8)`` draws.  Both consume the Mersenne
Twister stream, but *differently*: for the same seeded ``Random``
instance the generated CID values — and every draw made from that
instance afterwards — differ from builds that used the per-byte loop.
Golden artifacts regenerated after this change are therefore expected
to differ from pre-change golden artifacts at the same seed; within any
one build, runs remain byte-for-byte deterministic, which is the
property the tests below pin.
"""

import random

import pytest

from repro.quic.connection_id import ConnectionId


def test_generate_is_deterministic_per_seed():
    a = ConnectionId.generate(random.Random(42), 8)
    b = ConnectionId.generate(random.Random(42), 8)
    assert a == b
    assert len(a) == 8


def test_generate_matches_single_randbytes_draw():
    # Pins the stream-consumption contract from the docstring: exactly
    # one randbytes(n) draw, nothing else consumed.
    rng = random.Random(7)
    expected = random.Random(7).randbytes(12)
    cid = ConnectionId.generate(rng, 12)
    assert cid.value == expected
    # The generator advanced by exactly that one draw.
    follow = random.Random(7)
    follow.randbytes(12)
    assert rng.random() == follow.random()


def test_generate_distinct_draws_differ():
    rng = random.Random(0)
    assert ConnectionId.generate(rng) != ConnectionId.generate(rng)


def test_generate_zero_length():
    cid = ConnectionId.generate(random.Random(1), 0)
    assert len(cid) == 0
    assert cid.hex == ""
    assert str(cid) == "(empty)"


@pytest.mark.parametrize("length", (-1, 21))
def test_generate_rejects_bad_lengths(length):
    with pytest.raises(ValueError):
        ConnectionId.generate(random.Random(0), length)


def test_too_long_value_rejected():
    with pytest.raises(ValueError):
        ConnectionId(b"\x00" * 21)


def test_bytes_len_hex_roundtrip():
    cid = ConnectionId(b"\xde\xad\xbe\xef")
    assert bytes(cid) == b"\xde\xad\xbe\xef"
    assert len(cid) == 4
    assert cid.hex == "deadbeef"
    assert str(cid) == "deadbeef"
