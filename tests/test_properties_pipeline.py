"""Cross-cutting property tests over the measurement pipeline."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_connection_record
from repro.analysis.accuracy import accuracy_study
from repro.analysis.artifacts import record_from_dict, record_to_dict
from repro.core.classify import SpinBehaviour, classify_connection
from repro.core.grease_filter import is_greasing
from repro.core.observer import SpinObserver
from repro.quic.packet import VersionNegotiationHeader, parse_header
from repro.quic.connection_id import ConnectionId


# --- strategy helpers -------------------------------------------------

packet_stream = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e5),
        st.integers(min_value=0, max_value=2_000),
        st.booleans(),
    ),
    max_size=80,
).map(lambda items: sorted(items, key=lambda p: p[0]))

stack_series = st.lists(
    st.floats(min_value=0.01, max_value=5_000.0), min_size=0, max_size=12
)


@given(packets=packet_stream, stack=stack_series)
def test_pipeline_never_crashes_and_classifies_consistently(packets, stack):
    """Observer → classification → grease filter agree on any stream."""
    observer = SpinObserver()
    for time_ms, pn, spin in packets:
        observer.on_packet(time_ms, pn, spin)
    observation = observer.observation()
    behaviour = classify_connection(observation, stack)

    if behaviour is SpinBehaviour.NO_PACKETS:
        assert not packets
    if behaviour in (SpinBehaviour.ALL_ZERO, SpinBehaviour.ALL_ONE):
        assert len(observation.values_seen) == 1
    if behaviour is SpinBehaviour.GREASE:
        assert observation.spins
        assert is_greasing(observation.rtts_received_ms, stack)
    if behaviour is SpinBehaviour.SPIN:
        assert observation.spins
        assert not is_greasing(observation.rtts_received_ms, stack)


@given(packets=packet_stream, stack=stack_series)
@settings(max_examples=60)
def test_artifact_roundtrip_preserves_behaviour(packets, stack):
    """Export → JSON → import keeps the record analytically identical."""
    record = make_connection_record(packets=packets, stack_rtts=stack)
    record.behaviour = classify_connection(record.observation, stack)
    payload = json.loads(json.dumps(record_to_dict(record)))
    clone = record_from_dict(payload)
    assert clone.behaviour == record.behaviour
    assert clone.observation.rtts_received_ms == record.observation.rtts_received_ms
    assert clone.observation.rtts_sorted_ms == record.observation.rtts_sorted_ms
    assert clone.observation.spins == record.observation.spins


@given(packets=packet_stream, stack=stack_series)
@settings(max_examples=60)
def test_accuracy_study_totals_partition(packets, stack):
    """Every record lands in exactly one accuracy series (or none)."""
    record = make_connection_record(packets=packets, stack_rtts=stack)
    record.behaviour = classify_connection(record.observation, stack)
    study = accuracy_study([record])
    total = study.spin_received.connections + study.grease_received.connections
    comparable = bool(
        record.observation.spins
        and record.observation.rtts_received_ms
        and record.observation.rtts_sorted_ms
        and stack
        and sum(record.observation.rtts_received_ms) > 0
        and sum(record.observation.rtts_sorted_ms) > 0
        and sum(stack) > 0
    )
    assert total == (1 if comparable else 0)


@given(
    versions=st.lists(
        st.integers(min_value=1, max_value=2**32 - 1), min_size=1, max_size=12
    ),
    dcid_len=st.integers(min_value=0, max_value=20),
    scid_len=st.integers(min_value=0, max_value=20),
)
def test_version_negotiation_roundtrip_property(versions, dcid_len, scid_len):
    header = VersionNegotiationHeader(
        destination_cid=ConnectionId(bytes(dcid_len)),
        source_cid=ConnectionId(bytes(range(scid_len))),
        supported_versions=tuple(versions),
    )
    parsed, offset = parse_header(header.encode(), short_dcid_length=8)
    assert isinstance(parsed, VersionNegotiationHeader)
    assert parsed.supported_versions == tuple(versions)
    assert parsed.source_cid == header.source_cid
    assert offset == len(header.encode())
