"""Real-world list-file ingestion (toplist CSVs, zone files)."""

import io

from repro.internet.listfiles import (
    dedupe_preserving_order,
    parse_toplist_csv,
    parse_zone_file,
    read_target_population,
)


class TestToplistCsv:
    def test_rank_domain_format(self):
        stream = io.StringIO("1,example.com\n2,test.org\n3,shop.example.net\n")
        assert list(parse_toplist_csv(stream)) == [
            "example.com",
            "test.org",
            "shop.example.net",
        ]

    def test_bare_domain_format(self):
        stream = io.StringIO("example.com\ntest.org\n")
        assert list(parse_toplist_csv(stream)) == ["example.com", "test.org"]

    def test_www_stripped(self):
        stream = io.StringIO("1,www.example.com\n")
        assert list(parse_toplist_csv(stream)) == ["example.com"]

    def test_noise_skipped(self):
        stream = io.StringIO(
            "# comment\n\n1,example.com\n2,not a domain!!\n3,UPPER.CASE.ORG\n"
        )
        assert list(parse_toplist_csv(stream)) == ["example.com", "upper.case.org"]

    def test_trailing_dot_normalized(self):
        stream = io.StringIO("1,example.com.\n")
        assert list(parse_toplist_csv(stream)) == ["example.com"]


class TestZoneFile:
    ZONE = "\n".join(
        [
            "; com zone excerpt",
            "com.            86400  in  ns  a.gtld-servers.net.",
            "EXAMPLE.COM.    172800 IN  NS  ns1.example-dns.com.",
            "example.com.    172800 IN  NS  ns2.example-dns.com.",
            "sub.deep.example.com. 172800 IN NS ns1.example-dns.com.",
            "other.com.      172800 IN  NS  ns.other-dns.net.",
            "ignored.com.    86400  IN  A   192.0.2.1",
            "outof.zone.net. 172800 IN  NS  ns.x.net.",
            "",
        ]
    )

    def test_ns_delegations_extracted(self):
        domains = list(parse_zone_file(io.StringIO(self.ZONE), "com"))
        assert domains == ["example.com", "other.com"]

    def test_deep_names_reduced_to_delegation(self):
        # sub.deep.example.com collapses to example.com (already seen).
        domains = list(parse_zone_file(io.StringIO(self.ZONE), "com"))
        assert domains.count("example.com") == 1

    def test_apex_and_foreign_names_skipped(self):
        domains = list(parse_zone_file(io.StringIO(self.ZONE), "com"))
        assert "com" not in domains
        assert all(d.endswith(".com") for d in domains)

    def test_non_ns_records_ignored(self):
        domains = list(parse_zone_file(io.StringIO(self.ZONE), "com"))
        assert "ignored.com" not in domains


class TestDedup:
    def test_first_occurrence_wins(self):
        merged = dedupe_preserving_order(
            [["a.com", "b.com"], ["b.com", "c.com"], ["a.com"]]
        )
        assert merged == ["a.com", "b.com", "c.com"]

    def test_read_target_population(self):
        toplist = io.StringIO("1,a.com\n2,b.org\n")
        zone = io.StringIO("a.com. 172800 IN NS ns.x.net.\nz.com. 172800 IN NS ns.x.net.\n")
        population = read_target_population(
            toplist_streams=[toplist], zone_streams=[(zone, "com")]
        )
        assert population == ["a.com", "b.org", "z.com"]
