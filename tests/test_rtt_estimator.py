"""RFC 9002 RTT estimation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.rtt import RttEstimator


class TestFirstSample:
    def test_initializes_smoothed_and_var(self):
        est = RttEstimator()
        est.on_ack_received(now_ms=100.0, send_time_ms=60.0, ack_delay_ms=0.0)
        assert est.latest_rtt_ms == 40.0
        assert est.smoothed_rtt_ms == 40.0
        assert est.rttvar_ms == 20.0
        assert est.min_rtt_ms == 40.0
        assert est.has_sample


class TestAckDelayHandling:
    def test_min_rtt_ignores_ack_delay(self):
        est = RttEstimator()
        est.on_ack_received(100.0, 50.0, ack_delay_ms=20.0)
        assert est.min_rtt_ms == 50.0  # latest, not adjusted

    def test_ack_delay_subtracted_when_possible(self):
        est = RttEstimator()
        est.on_ack_received(100.0, 60.0, ack_delay_ms=0.0)  # min_rtt 40
        sample = est.on_ack_received(200.0, 140.0, ack_delay_ms=10.0)
        assert sample.latest_rtt_ms == 60.0
        assert sample.adjusted_rtt_ms == 50.0

    def test_ack_delay_not_pushed_below_min_rtt(self):
        est = RttEstimator()
        est.on_ack_received(100.0, 60.0, ack_delay_ms=0.0)  # min_rtt 40
        sample = est.on_ack_received(200.0, 155.0, ack_delay_ms=20.0)
        # 45 - 20 = 25 would undercut min_rtt 40: keep the raw latest.
        assert sample.adjusted_rtt_ms == 45.0

    def test_ack_delay_clamped_after_handshake(self):
        est = RttEstimator(max_ack_delay_ms=25.0)
        est.on_ack_received(100.0, 90.0, ack_delay_ms=0.0)  # min 10
        sample = est.on_ack_received(300.0, 200.0, ack_delay_ms=80.0, handshake_confirmed=True)
        assert sample.ack_delay_ms == 25.0
        assert sample.adjusted_rtt_ms == 100.0 - 25.0

    def test_ack_delay_unclamped_during_handshake(self):
        est = RttEstimator(max_ack_delay_ms=25.0)
        est.on_ack_received(100.0, 90.0, ack_delay_ms=0.0)
        sample = est.on_ack_received(
            300.0, 200.0, ack_delay_ms=80.0, handshake_confirmed=False
        )
        assert sample.ack_delay_ms == 80.0

    def test_negative_ack_delay_treated_as_zero(self):
        est = RttEstimator()
        sample = est.on_ack_received(100.0, 50.0, ack_delay_ms=-5.0)
        assert sample.ack_delay_ms == 0.0


class TestSmoothing:
    def test_ewma_update_matches_rfc(self):
        est = RttEstimator()
        est.on_ack_received(100.0, 0.0, 0.0)  # smoothed 100, var 50
        est.on_ack_received(300.0, 160.0, 0.0)  # adjusted 140
        assert est.rttvar_ms == pytest.approx(0.75 * 50 + 0.25 * abs(100 - 140))
        assert est.smoothed_rtt_ms == pytest.approx(0.875 * 100 + 0.125 * 140)

    def test_min_rtt_tracks_minimum(self):
        est = RttEstimator()
        for rtt in (50.0, 30.0, 70.0, 45.0):
            now = 1000.0 + rtt
            est.on_ack_received(now, 1000.0, 0.0)
        assert est.min_rtt_ms == 30.0


class TestAccessors:
    def test_mean_requires_samples(self):
        with pytest.raises(ValueError):
            RttEstimator().mean_rtt_ms()

    def test_mean_and_series(self):
        est = RttEstimator()
        est.on_ack_received(110.0, 100.0, 0.0)
        est.on_ack_received(230.0, 200.0, 0.0)
        assert est.adjusted_rtts() == [10.0, 30.0]
        assert est.mean_rtt_ms() == 20.0

    def test_time_travel_rejected(self):
        est = RttEstimator()
        with pytest.raises(ValueError):
            est.on_ack_received(50.0, 60.0, 0.0)


@given(
    rtts=st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=30)
)
def test_invariants_property(rtts):
    """min <= every latest sample; smoothed stays within observed range."""
    est = RttEstimator()
    clock = 0.0
    for rtt in rtts:
        clock += rtt + 1.0
        est.on_ack_received(clock, clock - rtt, 0.0)
    assert est.min_rtt_ms == pytest.approx(min(rtts))
    assert min(rtts) - 1e-9 <= est.smoothed_rtt_ms <= max(rtts) + 1e-9
    assert len(est.samples) == len(rtts)
