"""Section 5.1 accuracy metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    absolute_difference_ms,
    compare_means,
    mapped_ratio,
)


class TestAbsoluteDifference:
    def test_overestimation_positive(self):
        assert absolute_difference_ms(150.0, 50.0) == 100.0

    def test_underestimation_negative(self):
        assert absolute_difference_ms(30.0, 50.0) == -20.0


class TestMappedRatio:
    def test_equal_means_map_to_one(self):
        assert mapped_ratio(50.0, 50.0) == 1.0

    def test_overestimation_positive_ratio(self):
        assert mapped_ratio(150.0, 50.0) == 3.0

    def test_underestimation_negative_ratio(self):
        assert mapped_ratio(25.0, 50.0) == -2.0

    def test_magnitude_never_below_one(self):
        assert abs(mapped_ratio(50.0, 49.0)) >= 1.0

    def test_positive_inputs_required(self):
        with pytest.raises(ValueError):
            mapped_ratio(0.0, 50.0)
        with pytest.raises(ValueError):
            mapped_ratio(50.0, -1.0)


class TestCompareMeans:
    def test_uses_means_of_both_series(self):
        result = compare_means([100.0, 200.0], [50.0, 50.0])
        assert result.spin_mean_ms == 150.0
        assert result.quic_mean_ms == 50.0
        assert result.absolute_ms == 100.0
        assert result.ratio == 3.0
        assert result.overestimates

    def test_within_factor(self):
        result = compare_means([60.0], [50.0])
        assert result.within_factor(1.25)
        assert not result.within_factor(1.1)
        with pytest.raises(ValueError):
            result.within_factor(0.5)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            compare_means([], [50.0])
        with pytest.raises(ValueError):
            compare_means([50.0], [])


@given(
    a=st.floats(min_value=0.01, max_value=1e5),
    b=st.floats(min_value=0.01, max_value=1e5),
)
def test_ratio_antisymmetry_property(a, b):
    """Swapping spin and QUIC flips the sign but keeps the magnitude
    (except at exact equality, where both directions give +1)."""
    forward = mapped_ratio(a, b)
    backward = mapped_ratio(b, a)
    assert abs(forward) == pytest.approx(abs(backward))
    if a != b:
        assert forward == pytest.approx(-backward)
    assert abs(forward) >= 1.0


@given(
    spin=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=20),
    stack=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=20),
)
def test_compare_means_sign_consistency_property(spin, stack):
    result = compare_means(spin, stack)
    assert (result.absolute_ms > 0) == (result.ratio > 1.0)
    assert (result.absolute_ms < 0) == (result.ratio < 0)
