"""The paper's grease filter and its ablation variants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grease_filter import GreaseFilter, GreaseFilterVariant, is_greasing


class TestPaperFilter:
    def test_flags_sample_below_stack_minimum(self):
        assert is_greasing([5.0, 40.0], [38.0, 42.0])

    def test_accepts_samples_at_or_above_minimum(self):
        assert not is_greasing([38.0, 40.0], [38.0, 42.0])

    def test_empty_series_not_flagged(self):
        assert not is_greasing([], [38.0])
        assert not is_greasing([5.0], [])

    def test_default_variant_matches_function(self):
        spin, stack = [5.0, 40.0], [38.0, 42.0]
        assert GreaseFilter.is_greasing(spin, stack) == is_greasing(spin, stack)


class TestVariants:
    def test_slack_tolerates_marginal_dips(self):
        lenient = GreaseFilterVariant(baseline="min", slack=0.9)
        assert not lenient.is_greasing([36.0], [38.0])  # 36 >= 38*0.9
        assert lenient.is_greasing([30.0], [38.0])

    def test_mean_baseline_is_more_aggressive(self):
        spin = [39.0]
        stack = [38.0, 80.0]  # mean 59, min 38
        assert not GreaseFilterVariant(baseline="min").is_greasing(spin, stack)
        assert GreaseFilterVariant(baseline="mean").is_greasing(spin, stack)

    def test_quantile_baseline(self):
        variant = GreaseFilterVariant(baseline="quantile", baseline_quantile=50.0)
        stack = [30.0, 40.0, 50.0]
        assert variant.threshold_ms(stack) == 40.0

    def test_min_votes_requires_multiple_dips(self):
        variant = GreaseFilterVariant(min_votes=2)
        assert not variant.is_greasing([5.0, 40.0, 41.0], [38.0])
        assert variant.is_greasing([5.0, 6.0, 41.0], [38.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            GreaseFilterVariant(baseline="median")
        with pytest.raises(ValueError):
            GreaseFilterVariant(slack=0.0)
        with pytest.raises(ValueError):
            GreaseFilterVariant(min_votes=0)


@given(
    spin=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=20),
    stack=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=10),
)
def test_filter_definition_property(spin, stack):
    """The paper filter fires iff min(spin) < min(stack) — exactly."""
    assert is_greasing(spin, stack) == (min(spin) < min(stack))


@given(
    spin=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=20),
    stack=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=10),
    slack_a=st.floats(min_value=0.5, max_value=1.0),
    slack_b=st.floats(min_value=1.0, max_value=1.5),
)
def test_slack_monotonicity_property(spin, stack, slack_a, slack_b):
    """A smaller slack can only make the filter less aggressive."""
    low = GreaseFilterVariant(slack=slack_a).is_greasing(spin, stack)
    high = GreaseFilterVariant(slack=slack_b).is_greasing(spin, stack)
    if low:
        assert high  # anything flagged by the lenient filter is flagged
