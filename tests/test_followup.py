"""The Section 6 follow-up methodology (two-phase compliance study)."""

import pytest

from repro.campaign.followup import FollowUpResult, FollowUpStudy
from repro.internet.population import PopulationConfig, build_population


@pytest.fixture(scope="module")
def study_result():
    population = build_population(
        PopulationConfig(toplist_domains=0, czds_domains=2_500, seed=41)
    )
    study = FollowUpStudy(population)
    dataset, candidates = study.identify_candidates()
    result = study.probe(candidates, probes=16)
    return dataset, candidates, result


class TestPhaseOne:
    def test_candidates_are_spin_active(self, study_result):
        dataset, candidates, _ = study_result
        spin_names = {
            r.domain.name for r in dataset.results if r.shows_spin_activity
        }
        assert {d.name for d in candidates} == spin_names
        assert len(candidates) > 10


class TestPhaseTwo:
    def test_every_candidate_probed(self, study_result):
        _, candidates, result = study_result
        assert result.domains_probed == len(candidates)
        assert result.probes_per_domain == 16

    def test_probes_rerolled_within_week(self, study_result):
        """Different probes of the same domain give different spin
        outcomes (the 1-in-16 disable re-rolls per connection)."""
        _, _, result = study_result
        counts = [result.spin_counts[n] for n in result.active_domains()]
        assert counts, "expected active domains"
        assert any(0 < count < 16 for count in counts)

    def test_estimated_disable_rate_near_one_in_sixteen(self, study_result):
        """The paper's proposed design recovers the RFC 9000 parameter
        directly, free of deployment churn."""
        _, _, result = study_result
        rate = result.estimated_disable_rate()
        assert 0.02 < rate < 0.12  # true value 1/16 = 0.0625

    def test_distributions(self, study_result):
        _, _, result = study_result
        observed = result.observed_count_distribution()
        assert sum(observed) == pytest.approx(1.0)
        expected = result.expected_count_distribution(16)
        assert len(expected) == 17
        # Binomial(16, 15/16): the mode sits at 15 spinning probes,
        # with 16 a close second; together they carry most of the mass.
        assert max(expected) == expected[15]
        assert expected[15] + expected[16] > 0.7
        # The observed mode matches the compliant-endpoint reference:
        # most spin-enabled domains spin in 15 or 16 of 16 probes.
        assert observed[15] + observed[16] > 0.4

    def test_validation(self, study_result):
        population = build_population(
            PopulationConfig(toplist_domains=0, czds_domains=10, seed=1)
        )
        with pytest.raises(ValueError):
            FollowUpStudy(population).probe([], probes=0)


class TestResultHelpers:
    def test_empty_result_safe(self):
        result = FollowUpResult(week_label="x", probes_per_domain=4)
        assert result.estimated_disable_rate() == 0.0
        assert result.active_domains() == []
        assert result.observed_count_distribution() == [0.0] * 5
