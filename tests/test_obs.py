"""The observability plane (``repro.obs``): spans, profiler, SLOs.

The span contract under test is the one the trace plane already
enforces — a seeded campaign's deterministic span log is a pure
function of the seed, byte-identical at any worker count, and
crash-resume reuses span ids instead of minting duplicates.  The SLO
engine is tested as the pure function it is (snapshot in, report out),
and the API surfaces (``/v1/status``, ``/v1/spans``) against a live
threaded server.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.obs import (
    HealthEngine,
    PhaseProfiler,
    SLOSpec,
    SpanLog,
    default_service_slos,
    merge_profiles,
    parse_slo_specs,
    render_span_summary,
    span_id_for,
    span_rows,
    trace_id_for,
)
from repro.service import CampaignDaemon, ServiceConfig, ServiceState, build_server
from repro.telemetry import Telemetry
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner

CONFIG = ServiceConfig(
    seed=77,
    czds_domains=140,
    toplist_domains=40,
    first_week="cw19-2023",
    last_week="cw20-2023",
)


def http_get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestSpanLog:
    def test_nesting_builds_causal_paths(self):
        log = SpanLog()
        outer = log.span("scan:cw20-2023", domains=2)
        inner = log.span("domain:a.example", start_ms=0.0)
        inner.end(12.5)
        outer.end()
        assert [record.path for record in log.records] == [
            ("scan:cw20-2023", "domain:a.example"),
            ("scan:cw20-2023",),
        ]
        assert log.records[0].duration_ms == 12.5
        assert log.records[0].stage == "domain"
        assert not log._stack

    def test_end_is_idempotent(self):
        log = SpanLog()
        span = log.span("work")
        span.end(3.0)
        span.end(9.0)
        assert len(log.records) == 1
        assert log.records[0].end_ms == 3.0

    def test_absorb_reroots_under_the_open_span(self):
        shard = SpanLog()
        shard.span("domain:a").end(1.0)
        shard.span("domain:b", diag=False).end(2.0)
        parent = SpanLog()
        scan = parent.span("scan:cw20-2023")
        parent.absorb(shard.records, shard.diag_records)
        scan.end()
        assert parent.records[0].path == ("scan:cw20-2023", "domain:a")
        assert parent.records[1].path == ("scan:cw20-2023", "domain:b")

    def test_record_diag_skips_the_stack(self):
        log = SpanLog()
        span = log.span("campaign")
        log.record_diag("request:/v1/weeks", status=200)
        span.end()
        assert log.diag_records[0].path == ("request:/v1/weeks",)
        assert log.records[0].path == ("campaign",)

    def test_ids_derive_from_trace_and_path(self):
        trace = trace_id_for("campaign", 7, "cw19-2023")
        log = SpanLog()
        root = log.span("campaign")
        log.span("scan:cw19-2023").end()
        root.end()
        rows = span_rows(log.records, trace)
        child, parent = rows
        assert child["trace"] == parent["trace"] == trace
        assert child["parent"] == parent["span"]
        assert parent["parent"] is None
        assert child["span"] == span_id_for(trace, ("campaign", "scan:cw19-2023"))
        # Re-deriving the same rows yields the same ids (idempotence).
        assert span_rows(log.records, trace) == rows

    def test_render_summary_collapses_siblings(self):
        log = SpanLog()
        root = log.span("scan:cw20-2023")
        for name in ("a", "b", "c"):
            log.span(f"domain:{name}").end(5.0)
        root.end()
        text = render_span_summary(span_rows(log.records, "feed"))
        assert "domain x3" in text
        assert "stage latency" in text


class TestScanSpans:
    @pytest.fixture(scope="class")
    def targets(self, tiny_population):
        return tiny_population.domains[:60]

    def _scan(self, population, targets, workers, out_dir, checkpoint_dir=None):
        telemetry = Telemetry()
        Scanner(
            population,
            ScanConfig(),
            parallel=ParallelScanConfig(workers=workers, chunk_size=20),
            telemetry=telemetry,
        ).scan(
            week_label="cw20-2023",
            ip_version=4,
            domains=targets,
            checkpoint_dir=checkpoint_dir,
        )
        return telemetry, telemetry.save(out_dir)

    def test_span_log_identical_across_worker_counts(
        self, tiny_population, targets, tmp_path
    ):
        """The tentpole acceptance: equal seeds, any sharding,
        byte-identical deterministic span logs."""
        _, seq = self._scan(tiny_population, targets, 1, tmp_path / "w1")
        _, par = self._scan(tiny_population, targets, 4, tmp_path / "w4")
        assert seq["spans"].read_bytes() == par["spans"].read_bytes()
        # The diag stream is where sharding may (and does) differ.
        diag = par["spans_diag"].read_text(encoding="utf-8")
        assert "shard:" in diag

    def test_crash_resume_reuses_ids_without_duplicates(
        self, tiny_population, targets, tmp_path
    ):
        full, _ = self._scan(tiny_population, targets, 1, tmp_path / "full")
        reference = {
            row["span"]: row["path"]
            for row in span_rows(full.spans.records, full.spans.trace_id)
        }
        ckpt = tmp_path / "ckpt"
        self._scan(tiny_population, targets, 2, tmp_path / "first", str(ckpt))
        shards = sorted(ckpt.glob("shard-*.cbr"))
        assert len(shards) >= 2
        shards[1].unlink()  # the "crash": one shard lost
        resumed, _ = self._scan(
            tiny_population, targets, 3, tmp_path / "resumed", str(ckpt)
        )
        rows = span_rows(resumed.spans.records, resumed.spans.trace_id)
        ids = [row["span"] for row in rows]
        assert len(ids) == len(set(ids)), "duplicate span ids after resume"
        # Content-derived ids: every resumed span is the same logical
        # step (same id, same causal path) as in the uninterrupted run.
        for row in rows:
            assert reference[row["span"]] == row["path"]


class TestCampaignSpans:
    def _run_once(self, directory, workers):
        telemetry = Telemetry()
        config = ServiceConfig(
            seed=CONFIG.seed,
            czds_domains=CONFIG.czds_domains,
            toplist_domains=CONFIG.toplist_domains,
            first_week=CONFIG.first_week,
            last_week=CONFIG.last_week,
            workers=workers,
        )
        daemon = CampaignDaemon(directory, config, telemetry=telemetry)
        daemon.run_once()
        return daemon, telemetry

    def test_pipeline_spans_parent_to_the_campaign_root(self, tmp_path):
        daemon, telemetry = self._run_once(tmp_path / "svc", 1)
        rows = span_rows(telemetry.spans.records, telemetry.spans.trace_id)
        assert telemetry.spans.trace_id == daemon.campaign_trace_id()
        by_id = {row["span"]: row for row in rows}
        roots = [row for row in rows if row["parent"] is None]
        assert [row["name"] for row in roots] == ["campaign"]
        for row in rows:
            walk = row
            while walk["parent"] is not None:
                walk = by_id[walk["parent"]]
            assert walk["name"] == "campaign"
        stages = {row["name"].partition(":")[0] for row in rows}
        assert {
            "campaign", "scan", "domain", "merge", "spool", "index",
            "week", "status",
        } <= stages

    def test_campaign_span_log_identical_across_worker_counts(self, tmp_path):
        _, seq = self._run_once(tmp_path / "w1", 1)
        _, par = self._run_once(tmp_path / "w2", 2)
        seq_paths = seq.save(tmp_path / "tele1")
        par_paths = par.save(tmp_path / "tele2")
        assert (
            seq_paths["spans"].read_bytes() == par_paths["spans"].read_bytes()
        )


class TestProfiler:
    def test_sim_mode_charges_the_open_stack(self):
        profiler = PhaseProfiler(sample_interval_ms=1.0)
        with profiler.phase("scan"):
            with profiler.phase("exchange"):
                profiler.charge(30.0)
                profiler.charge(12.0)
            profiler.charge(8.0)
        assert profiler.self_ms == {
            ("scan", "exchange"): 42.0,
            ("scan",): 8.0,
        }
        assert profiler.total_ms == 50.0
        assert profiler.samples()[("scan", "exchange")] == 42
        assert profiler.collapsed() == ["scan 8", "scan;exchange 42"]

    def test_wall_mode_attributes_self_time(self):
        ticks = iter([0.0, 0.010, 0.040, 0.050])  # seconds
        profiler = PhaseProfiler(clock=lambda: next(ticks))
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        # inner: 40ms - 10ms = 30ms; outer: (50-0) - 30 child = 20ms.
        assert profiler.self_ms[("outer", "inner")] == pytest.approx(30.0)
        assert profiler.self_ms[("outer",)] == pytest.approx(20.0)
        assert profiler.coverage(50.0) == pytest.approx(1.0)

    def test_wall_mode_ignores_charges(self):
        profiler = PhaseProfiler(clock=lambda: 0.0)
        with profiler.phase("p"):
            profiler.charge(1000.0)
        assert profiler.total_ms == 0.0

    def test_non_lifo_close_is_an_error(self):
        profiler = PhaseProfiler()
        outer = profiler.phase("outer").__enter__()
        inner = profiler.phase("inner").__enter__()
        with pytest.raises(RuntimeError, match="LIFO"):
            outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)

    def test_merge_sums_shard_accounts(self):
        shards = []
        for _ in range(2):
            profiler = PhaseProfiler()
            with profiler.phase("scan"):
                profiler.charge(10.0)
            shards.append(profiler)
        merged = merge_profiles(shards)
        assert merged.self_ms == {("scan",): 20.0}
        assert merged.total_ms == 20.0

    def test_scan_profile_is_deterministic_and_covers_the_exchange(
        self, tiny_population
    ):
        targets = tiny_population.domains[:40]

        def profiled():
            telemetry = Telemetry()
            telemetry.profiler = PhaseProfiler()
            Scanner(tiny_population, ScanConfig(), telemetry=telemetry).scan(
                week_label="cw20-2023", ip_version=4, domains=targets
            )
            return telemetry.profiler

        first, second = profiled(), profiled()
        assert first.self_ms == second.self_ms
        assert ("scan", "scan.domain", "exchange") in first.self_ms


class TestSLOEngine:
    def _snapshot(self, **gauges):
        return {"counters": {}, "gauges": gauges, "histograms": {}}

    def test_burn_ladder(self):
        spec = SLOSpec("lag", "max_value", "backlog", objective=10.0)
        engine = HealthEngine([spec])
        for value, verdict in ((5.0, "ok"), (15.0, "degraded"), (25.0, "failing")):
            report = engine.evaluate(self._snapshot(backlog=value))
            assert report.overall == verdict
            assert report.results[0].verdict == verdict
        assert engine.evaluate(self._snapshot(backlog=25.0)).exit_code == 2
        assert engine.evaluate(self._snapshot(backlog=15.0)).exit_code == 1

    def test_min_value_inverts_the_burn(self):
        spec = SLOSpec("rate", "min_value", "speed", objective=100.0)
        engine = HealthEngine([spec])
        assert engine.evaluate(self._snapshot(speed=200.0)).overall == "ok"
        assert engine.evaluate(self._snapshot(speed=60.0)).overall == "degraded"
        assert engine.evaluate(self._snapshot(speed=0.0)).overall == "failing"

    def test_missing_data_never_degrades_but_alone_is_no_data(self):
        specs = [
            SLOSpec("a", "max_value", "present", objective=1.0),
            SLOSpec("b", "max_value", "absent", objective=1.0),
        ]
        report = HealthEngine(specs).evaluate(self._snapshot(present=0.0))
        assert report.overall == "ok"
        assert report.results[1].verdict == "no_data"
        empty = HealthEngine(specs).evaluate(self._snapshot())
        assert empty.overall == "no_data"
        assert empty.exit_code == 0

    def test_max_ratio_uses_the_delta_from_prior(self):
        spec = SLOSpec(
            "errors", "max_ratio", "err", total="total", objective=0.05
        )
        engine = HealthEngine([spec])
        now = {"counters": {"err": 24.0, "total": 120.0}, "gauges": {}}
        assert engine.evaluate(now).overall == "failing"
        prior = {"counters": {"err": 24.0, "total": 20.0}, "gauges": {}}
        assert engine.evaluate(now, prior=prior).overall == "ok"

    def test_max_ratio_missing_numerator_counts_as_zero(self):
        spec = SLOSpec(
            "errors", "max_ratio", "err", total="total", objective=0.05
        )
        report = HealthEngine([spec]).evaluate(
            {"counters": {"total": 50.0}, "gauges": {}}
        )
        assert report.results[0].verdict == "ok"
        assert report.results[0].actual == 0.0

    def test_labelled_series_sum_under_the_bare_name(self):
        spec = SLOSpec("hs", "max_value", "handshakes", objective=10.0)
        snapshot = {
            "counters": {
                "handshakes{outcome=success}": 4.0,
                "handshakes{outcome=failure}": 3.0,
            },
            "gauges": {},
        }
        assert HealthEngine([spec]).evaluate(snapshot).results[0].actual == 7.0

    def test_quantile_max_reads_the_histogram_summary(self):
        spec = SLOSpec(
            "p99", "quantile_max", "api.request_ms", objective=10.0, quantile=99
        )
        snapshot = {
            "counters": {},
            "gauges": {},
            "histograms": {"api.request_ms": {"count": 5, "p99_ms": 30.0}},
        }
        assert HealthEngine([spec]).evaluate(snapshot).overall == "failing"

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            parse_slo_specs("{nope")
        with pytest.raises(ValueError, match="JSON list"):
            parse_slo_specs("{}")
        with pytest.raises(ValueError, match="missing keys"):
            parse_slo_specs('[{"name": "x"}]')
        with pytest.raises(ValueError, match="unknown kind"):
            parse_slo_specs(
                '[{"name": "x", "kind": "meh", "metric": "m", "objective": 1}]'
            )
        specs = parse_slo_specs(
            '[{"name": "x", "kind": "max_value", "metric": "m", "objective": 2}]'
        )
        assert specs == [SLOSpec("x", "max_value", "m", 2.0)]

    def test_default_slos_evaluate_against_live_names(self):
        names = {spec.name for spec in default_service_slos()}
        assert {"scan-throughput", "indexer-lag", "api-p99"} <= names


class TestStatusEndpoints:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        telemetry = Telemetry()
        daemon = CampaignDaemon(
            tmp_path_factory.mktemp("svc-obs"), CONFIG, telemetry=telemetry
        )
        daemon.run_once()
        state = ServiceState(daemon.spool, daemon.indexer, telemetry=telemetry)
        server = build_server(state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        yield daemon, f"http://127.0.0.1:{port}"
        server.shutdown()
        server.server_close()

    def test_status_reports_slo_verdicts(self, service):
        _, base = service
        status, body = http_get(f"{base}/v1/status")
        assert status == 200
        payload = json.loads(body)
        assert payload["overall"] in ("ok", "degraded", "failing", "no_data")
        by_name = {row["name"]: row for row in payload["slos"]}
        assert by_name["indexer-lag"]["verdict"] == "ok"
        assert by_name["campaign-backlog"]["actual"] == 0.0

    def test_spans_cover_the_pipeline_with_one_root(self, service):
        daemon, base = service
        status, body = http_get(f"{base}/v1/spans")
        assert status == 200
        payload = json.loads(body)
        assert payload["trace"] == daemon.campaign_trace_id()
        roots = [row for row in payload["spans"] if row["parent"] is None]
        assert [row["name"] for row in roots] == ["campaign"]
        stages = {row["name"].partition(":")[0] for row in payload["spans"]}
        assert {"campaign", "scan", "spool", "index", "status"} <= stages

    def test_requests_land_in_histogram_and_diag_spans(self, service):
        _, base = service
        http_get(f"{base}/v1/weeks")
        status, body = http_get(f"{base}/v1/metrics")
        assert status == 200
        snapshot = json.loads(body)["metrics"]
        assert snapshot["histograms"]["api.request_ms"]["count"] >= 1
        _, spans_body = http_get(f"{base}/v1/spans")
        diag_names = {row["name"] for row in json.loads(spans_body)["diag"]}
        assert "request:/v1/weeks" in diag_names


class TestObsCli:
    @pytest.fixture(scope="class")
    def service_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("svc-cli")
        telemetry = Telemetry()
        CampaignDaemon(directory, CONFIG, telemetry=telemetry).run_once()
        telemetry.save(directory / "telemetry")
        return directory

    def test_status_dir_renders_and_gates(self, service_dir):
        out = io.StringIO()
        with redirect_stdout(out):
            code = main(["status", "--dir", str(service_dir), "--exit-code"])
        assert code == 0
        text = out.getvalue()
        assert text.startswith("health: ok")
        assert "indexer-lag" in text

    def test_status_json_is_structured(self, service_dir):
        out = io.StringIO()
        with redirect_stdout(out):
            code = main(["status", "--dir", str(service_dir), "--json"])
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["overall"] == "ok"

    def test_status_custom_slo_gate_fails(self, service_dir, tmp_path):
        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(
                [
                    {
                        "name": "impossible",
                        "kind": "max_value",
                        "metric": "service.artifacts_spooled",
                        "objective": 0,
                    }
                ]
            ),
            encoding="utf-8",
        )
        out = io.StringIO()
        with redirect_stdout(out):
            code = main(
                [
                    "status", "--dir", str(service_dir),
                    "--slo", str(spec_path), "--exit-code",
                ]
            )
        assert code == 2
        assert "failing" in out.getvalue()

    def test_status_missing_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no service directory"):
            main(["status", "--dir", str(tmp_path / "nope")])

    def test_summarize_appends_the_span_tree(self, service_dir, capsys):
        code = main(["telemetry", "summarize", str(service_dir / "telemetry")])
        assert code == 0
        text = capsys.readouterr().out
        assert "spans:" in text
        assert "campaign" in text

    def test_profile_sim_reports_phases(self, capsys):
        code = main(
            [
                "profile", "--sim", "--czds", "40", "--toplist", "10",
                "--seed", "9",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "repro profile:" in text
        assert "scan;scan.domain;exchange" in text

    def test_profile_writes_collapsed_stacks(self, tmp_path, capsys):
        out_path = tmp_path / "stacks.txt"
        code = main(
            [
                "profile", "--sim", "--czds", "40", "--toplist", "10",
                "--seed", "9", "--out", str(out_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        lines = out_path.read_text(encoding="utf-8").splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_top_unreachable_server_errors(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["top", "--url", "http://127.0.0.1:1"])
