"""Mid-path taps and spin-based RTT decomposition."""

import pytest

from repro._util.rng import derive_rng, fork_rng
from repro.core.spin import EndpointRole, SpinPolicy
from repro.core.tomography import SpinTomographyObserver
from repro.netsim.delays import ConstantDelay
from repro.netsim.events import Simulator
from repro.netsim.path import Path, PathProfile, duplex_paths
from repro.quic.connection import ConnectionConfig, QuicEndpoint
from repro.web.http3 import ResponsePlan, run_exchange

ONE_WAY_MS = 30.0


class TestPathTap:
    def test_tap_fires_at_fraction_of_delay(self):
        simulator = Simulator()
        taps = []
        arrivals = []
        profile = PathProfile(propagation_delay_ms=10.0, jitter=ConstantDelay(0.0))
        path = Path(simulator, profile, lambda d: arrivals.append(simulator.now_ms),
                    derive_rng(1, "tap"))
        path.install_tap(lambda t, d: taps.append(t), position=0.25)
        path.send(b"x")
        simulator.run()
        assert taps == [pytest.approx(2.5)]
        assert arrivals == [pytest.approx(10.0)]

    def test_tap_position_validated(self):
        simulator = Simulator()
        path = Path(simulator, PathProfile(), lambda d: None, derive_rng(1, "t"))
        with pytest.raises(ValueError):
            path.install_tap(lambda t, d: None, position=1.5)

    def test_lost_datagram_never_reaches_tap(self):
        simulator = Simulator()
        taps = []
        profile = PathProfile(propagation_delay_ms=1.0, loss_probability=0.99)
        path = Path(simulator, profile, lambda d: None, derive_rng(3, "loss"))
        path.install_tap(lambda t, d: taps.append(t))
        for _ in range(50):
            path.send(b"x")
        simulator.run()
        assert len(taps) < 10


def run_tapped_exchange(tap_position_from_client: float, seed: int = 4):
    """A full exchange with a tomography observer at a mid-path point.

    The observation point sits at fraction ``x`` of the client-server
    path (0 = at the client).  On the uplink that is position ``x`` from
    the sender; on the downlink, position ``1 - x``.
    """
    simulator = Simulator()
    rng = derive_rng(seed, "tomography")
    observer = SpinTomographyObserver(short_dcid_length=8)
    config = ConnectionConfig()

    from repro.qlog.recorder import TraceRecorder

    recorder = TraceRecorder()
    client = QuicEndpoint(
        simulator, EndpointRole.CLIENT, config, SpinPolicy.SPIN,
        fork_rng(rng, "c"), recorder=recorder,
    )
    server = QuicEndpoint(
        simulator, EndpointRole.SERVER, config, SpinPolicy.SPIN, fork_rng(rng, "s")
    )
    profile = PathProfile(
        propagation_delay_ms=ONE_WAY_MS, jitter=ConstantDelay(0.0)
    )
    uplink, downlink = duplex_paths(
        simulator, profile, profile,
        client.receive_datagram, server.receive_datagram, fork_rng(rng, "p"),
    )
    uplink.install_tap(observer.on_client_datagram, position=tap_position_from_client)
    downlink.install_tap(
        observer.on_server_datagram, position=1.0 - tap_position_from_client
    )
    client.attach_transport(uplink.send)
    server.attach_transport(downlink.send)

    from repro.web.http3 import _ClientApp, _ServerApp

    plan = ResponsePlan(server_header="x", think_time_ms=15.0, write_sizes=(220_000,))
    _ClientApp(simulator, client, "www.tomo.test")
    _ServerApp(simulator, server, [plan])
    client.connect()
    simulator.run()
    return observer


class TestDecomposition:
    def test_components_sum_to_spin_period(self):
        observer = run_tapped_exchange(tap_position_from_client=0.5)
        assert len(observer.samples) >= 3
        for sample in observer.samples:
            assert sample.total_ms == pytest.approx(
                sample.upstream_ms + sample.downstream_ms
            )
            # The full period is at least the path RTT.
            assert sample.total_ms >= 2 * ONE_WAY_MS - 1.0

    def test_midpoint_splits_roughly_evenly(self):
        """At the path midpoint, each steady-state component covers one
        half of the propagation plus that side's end-host turnaround."""
        observer = run_tapped_exchange(tap_position_from_client=0.5)
        steady = observer.samples[1:]
        for sample in steady:
            assert sample.upstream_ms >= ONE_WAY_MS - 1.0
            assert sample.downstream_ms >= ONE_WAY_MS * 0.5 - 1.0

    def test_tap_near_client_shifts_mass_upstream(self):
        near_client = run_tapped_exchange(tap_position_from_client=0.1)
        near_server = run_tapped_exchange(tap_position_from_client=0.9)
        up_client_side = sorted(near_client.upstream_rtts_ms())[len(near_client.samples) // 2]
        up_server_side = sorted(near_server.upstream_rtts_ms())[len(near_server.samples) // 2]
        # Close to the client almost the whole path is "upstream";
        # close to the server almost none of it is.
        assert up_client_side > up_server_side + ONE_WAY_MS


class TestRobustness:
    def test_garbage_counted(self):
        observer = SpinTomographyObserver()
        observer.on_client_datagram(0.0, b"\x00")
        assert observer.parse_errors == 1

    def test_reflection_without_cause_ignored(self):
        from repro.quic.connection_id import ConnectionId
        from repro.quic.datagram import QuicPacket, encode_datagram
        from repro.quic.frames import PingFrame
        from repro.quic.packet import ShortHeader

        observer = SpinTomographyObserver(short_dcid_length=8)
        cid = ConnectionId(bytes(8))
        for pn, spin in enumerate([False, True]):
            packet = QuicPacket(
                header=ShortHeader(destination_cid=cid, packet_number=pn, spin_bit=spin),
                frames=(PingFrame(),),
            )
            observer.on_server_datagram(float(pn), encode_datagram([packet]))
        assert observer.samples == []
