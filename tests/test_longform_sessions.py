"""Multi-request sessions and the longer-connections accuracy study."""

import pytest

from repro._util.rng import derive_rng
from repro.analysis.longform import (
    per_sample_deviation_profile,
    windowed_accuracy,
)
from repro.core.observer import observe_recorder
from repro.core.spin import SpinPolicy
from repro.netsim.delays import ConstantDelay
from repro.netsim.path import PathProfile
from repro.web.http3 import ResponsePlan, run_session

RTT = 40.0


def session(plans, gaps=None, seed=3):
    profile = PathProfile(propagation_delay_ms=RTT / 2, jitter=ConstantDelay(0.0))
    return run_session(
        "www.session.test",
        plans,
        SpinPolicy.SPIN,
        SpinPolicy.SPIN,
        profile,
        profile,
        derive_rng(seed, "session"),
        think_gaps_ms=gaps,
    )


class TestRunSession:
    def test_sequential_requests_complete(self):
        plans = [
            ResponsePlan(server_header="x", think_time_ms=20.0, write_sizes=(9_000,))
            for _ in range(5)
        ]
        result = session(plans, gaps=[50.0] * 4)
        assert result.success
        assert result.completed_requests == 5
        # Body bytes plus one textual response head per request.
        assert 45_000 <= result.total_body_bytes < 46_000

    def test_single_request_session_equals_exchange_shape(self):
        plans = [ResponsePlan(server_header="x", write_sizes=(12_000,))]
        result = session(plans)
        assert result.success and result.completed_requests == 1

    def test_gap_validation(self):
        plans = [ResponsePlan(server_header="x", write_sizes=(1_000,))] * 3
        with pytest.raises(ValueError):
            session(plans, gaps=[10.0])  # needs two gaps for three requests

    def test_client_think_time_inflates_spin_period(self):
        """Idle gaps between requests become spin-period inflation —
        the flip side of the paper's end-host-delay observation."""
        plans = [
            ResponsePlan(server_header="x", think_time_ms=10.0, write_sizes=(9_000,))
            for _ in range(3)
        ]
        busy = session(plans, gaps=[0.0, 0.0])
        idle = session(plans, gaps=[400.0, 400.0])
        busy_max = max(observe_recorder(busy.recorder).rtts_received_ms)
        idle_max = max(observe_recorder(idle.recorder).rtts_received_ms)
        assert idle_max > busy_max + 300.0


class TestLongConnectionStudy:
    def _samples(self, body_bytes, seed_base=0):
        """Sustained single-object downloads (continuous transfers)."""
        pairs = []
        for seed in range(10):
            plans = [
                ResponsePlan(
                    server_header="x",
                    think_time_ms=150.0,
                    write_sizes=(body_bytes,),
                )
            ]
            result = session(plans, seed=seed_base + seed)
            observation = observe_recorder(result.recorder)
            pairs.append(
                (observation.rtts_received_ms, result.recorder.stack_rtts_ms())
            )
        return pairs

    def test_estimates_stabilize_on_longer_connections(self):
        """Later spin samples of sustained transfers approach the true
        RTT (the paper's Section 6 expectation)."""
        profile = per_sample_deviation_profile(self._samples(body_bytes=380_000))
        assert len(profile.medians) >= 4
        # Steady-state samples settle near 1x the minimum stack RTT.
        assert profile.medians[-1] < 1.5
        assert profile.stabilizes(warmup=2, tolerance=1.6)

    def test_windowed_accuracy_not_worse(self):
        """Dropping the warm-up samples (which absorb the request
        think time) cannot hurt on continuous transfers."""
        pairs = self._samples(body_bytes=380_000)
        full, windowed = windowed_accuracy(pairs, skip_first=1)
        assert len(full) == len(windowed) > 0
        mean_full = sum(abs(r.ratio) for r in full) / len(full)
        mean_windowed = sum(abs(r.ratio) for r in windowed) / len(windowed)
        assert mean_windowed <= mean_full + 1e-9

    def test_windowed_accuracy_validation(self):
        with pytest.raises(ValueError):
            windowed_accuracy([], skip_first=-1)

    def test_profile_empty_input(self):
        profile = per_sample_deviation_profile([])
        assert profile.medians == []
        assert not profile.stabilizes()
