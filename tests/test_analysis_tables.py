"""Table aggregations (support overview, AS organizations, configuration)
on hand-constructed scan data with known ground truth."""

import pytest

from conftest import make_connection_record
from repro.analysis.asorg import organization_table
from repro.analysis.config import configuration_table
from repro.analysis.support import support_overview
from repro.analysis.webserver import webserver_shares
from repro.core.classify import SpinBehaviour
from repro.internet.asdb import IpAddr, build_default_asdb
from repro.internet.population import (
    DomainRecord,
    ListGroup,
    Population,
    PopulationConfig,
)
from repro.web.scanner import DomainScanResult, ScanDataset


def build_fixture():
    """Three CZDS domains and one toplist domain with known behaviour."""
    population = Population(PopulationConfig(toplist_domains=0, czds_domains=0))
    dataset = ScanDataset(week_label="cw20-2023", ip_version=4)

    def add_domain(name, zone, in_toplist, resolved, quic, connections, ip_value=None):
        record = DomainRecord(
            name=name,
            zone=zone,
            in_toplist=in_toplist,
            in_czds=not in_toplist,
            resolves=resolved,
        )
        population.domains.append(record)
        dataset.results.append(
            DomainScanResult(
                domain=record,
                resolved=resolved,
                quic_support=quic,
                resolved_ip=IpAddr(ip_value, 4) if ip_value else None,
                connections=connections,
            )
        )
        return record

    spin_conn = make_connection_record(
        spin_rtts=[40.0, 42.0],
        stack_rtts=[38.0],
        behaviour=SpinBehaviour.SPIN,
        ip_value=0x0A000001,
        domain="spin.com",
    )
    zero_conn = make_connection_record(
        spin_rtts=[],
        stack_rtts=[30.0],
        behaviour=SpinBehaviour.ALL_ZERO,
        ip_value=0x0A000002,
        domain="zero.com",
    )
    zero_conn.observation.values_seen = {False}
    grease_conn = make_connection_record(
        spin_rtts=[2.0, 40.0],
        stack_rtts=[38.0],
        behaviour=SpinBehaviour.GREASE,
        ip_value=0x0A000003,
        domain="grease.org",
    )
    toplist_conn = make_connection_record(
        spin_rtts=[],
        stack_rtts=[20.0],
        behaviour=SpinBehaviour.ALL_ONE,
        ip_value=0x0A000004,
        domain="one.net",
    )
    toplist_conn.observation.values_seen = {True}

    add_domain("spin.com", "com", False, True, True, [spin_conn], 0x0A000001)
    add_domain("zero.com", "com", False, True, True, [zero_conn], 0x0A000002)
    add_domain("grease.org", "org", False, True, True, [grease_conn], 0x0A000003)
    add_domain("unresolved.com", "com", False, False, False, [])
    add_domain("noquic.xyz", "xyz", False, True, False, [], 0x0A000005)
    add_domain("one.net", "net", True, True, True, [toplist_conn], 0x0A000004)
    return population, dataset


class TestSupportOverview:
    def test_domain_counts(self):
        population, dataset = build_fixture()
        overview = support_overview(dataset, population)
        czds = overview.row(ListGroup.CZDS)
        assert czds.domains_total == 5
        assert czds.domains_resolved == 4
        assert czds.domains_quic == 3
        assert czds.domains_spin == 1  # grease does not count as Spin
        assert czds.domain_spin_share == pytest.approx(1 / 3)

    def test_ip_counts(self):
        population, dataset = build_fixture()
        overview = support_overview(dataset, population)
        czds = overview.row(ListGroup.CZDS)
        assert czds.ips_resolved == 4  # includes the non-QUIC resolved IP
        assert czds.ips_quic == 3
        assert czds.ips_spin == 1
        assert czds.ip_spin_share == pytest.approx(1 / 3)

    def test_group_separation(self):
        population, dataset = build_fixture()
        overview = support_overview(dataset, population)
        toplists = overview.row(ListGroup.TOPLISTS)
        assert toplists.domains_total == 1
        assert toplists.domains_quic == 1
        assert toplists.domains_spin == 0
        cno = overview.row(ListGroup.COM_NET_ORG)
        assert cno.domains_total == 4  # com, com, org, com (not xyz)

    def test_empty_groups_safe(self):
        population = Population(PopulationConfig(toplist_domains=0, czds_domains=0))
        dataset = ScanDataset(week_label="x", ip_version=4)
        overview = support_overview(dataset, population)
        assert overview.row(ListGroup.CZDS).domain_spin_share == 0.0


class TestConfigurationTable:
    def test_behaviour_counts(self):
        population, dataset = build_fixture()
        table = configuration_table(dataset, population)
        czds = table.row(ListGroup.CZDS)
        assert czds.quic_domains == 3
        assert czds.all_zero == 1
        assert czds.spin == 1
        assert czds.grease == 1
        assert czds.all_one == 0
        top = table.row(ListGroup.TOPLISTS)
        assert top.all_one == 1

    def test_shares(self):
        population, dataset = build_fixture()
        czds = configuration_table(dataset, population).row(ListGroup.CZDS)
        assert czds.all_zero_share == pytest.approx(1 / 3)
        assert czds.grease_share == pytest.approx(1 / 3)


class TestOrganizationTable:
    def test_attribution_and_ranks(self):
        asdb = build_default_asdb()
        import ipaddress

        from repro.internet.providers import provider_by_name

        cf_base = int(
            ipaddress.ip_network(provider_by_name("cloudflare").v4_prefix).network_address
        )
        hostinger_base = int(
            ipaddress.ip_network(provider_by_name("hostinger").v4_prefix).network_address
        )
        records = []
        for i in range(5):
            records.append(
                make_connection_record(
                    spin_rtts=[],
                    stack_rtts=[10.0],
                    behaviour=SpinBehaviour.ALL_ZERO,
                    ip_value=cf_base + 50 + i,
                )
            )
        for i in range(3):
            records.append(
                make_connection_record(
                    spin_rtts=[40.0],
                    stack_rtts=[38.0],
                    behaviour=SpinBehaviour.SPIN,
                    ip_value=hostinger_base + 20 + i,
                )
            )
        table = organization_table(records, asdb, top_n=2)
        assert table.top_rows[0].org_name == "Cloudflare"
        assert table.top_rows[0].total_rank == 1
        assert table.top_rows[0].spin_connections == 0
        assert table.top_rows[0].spin_rank is None
        hostinger = table.row("Hostinger")
        assert hostinger.spin_connections == 3
        assert hostinger.spin_share == 1.0
        assert hostinger.spin_rank == 1
        assert table.total_connections == 8

    def test_failed_connections_excluded(self):
        asdb = build_default_asdb()
        record = make_connection_record(spin_rtts=[], stack_rtts=[])
        record.success = False
        table = organization_table([record], asdb)
        assert table.total_connections == 0

    def test_unknown_org_lookup_raises(self):
        asdb = build_default_asdb()
        table = organization_table([], asdb)
        with pytest.raises(KeyError):
            table.row("Nonexistent Org")


class TestWebserverShares:
    def test_spinning_only_filter(self):
        records = [
            make_connection_record(
                spin_rtts=[40.0], stack_rtts=[38.0],
                behaviour=SpinBehaviour.SPIN, server_header="LiteSpeed",
            ),
            make_connection_record(
                spin_rtts=[40.0], stack_rtts=[38.0],
                behaviour=SpinBehaviour.SPIN, server_header="LiteSpeed",
            ),
            make_connection_record(
                spin_rtts=[], stack_rtts=[30.0],
                behaviour=SpinBehaviour.ALL_ZERO, server_header="cloudflare",
            ),
        ]
        spinning = webserver_shares(records, spinning_only=True)
        assert len(spinning) == 1
        assert spinning[0].server_header == "LiteSpeed"
        assert spinning[0].share == 1.0
        everything = webserver_shares(records, spinning_only=False)
        assert {s.server_header for s in everything} == {"LiteSpeed", "cloudflare"}
        assert everything[0].connections == 2
