"""Connection migration: plans, TCP flows, resolver, and the full mux.

Covers the migration-chaos layer end to end: seeded
:class:`~repro.netsim.migration.MigrationPlan` drawing, the
TCP-with-spin flow class, CID linkage through
:class:`~repro.core.flow_resolver.FlowKeyResolver`, single-flow replay
equivalence under migration, and the byte-identity guarantee that a
migration-free run is unaffected by any of it.
"""

import io
import random

import pytest

from repro.core.flow_resolver import FlowKeyResolver, tuple_flow_key
from repro.netsim.migration import (
    DEFAULT_DELAY_MS,
    MigrationKind,
    MigrationPlan,
    MigrationSpec,
    parse_migration_plan,
)
from repro.netsim.tcp import TcpSegment, decode_tcp_segment, encode_tcp_segment
from repro.monitor import MonitorConfig, TrafficConfig, TrafficMux, run_monitor

PLAN = parse_migration_plan("nat-rebind:0.35,cid-rotation:0.35,path-migration:0.1")


class TestMigrationPlan:
    def test_parse_and_roundtrip(self):
        plan = parse_migration_plan("nat-rebind:0.5:100,cid-rotation:0.25")
        spec = plan.spec(MigrationKind.NAT_REBIND)
        assert spec.probability == 0.5
        assert spec.effective_delay_ms == 100.0
        rotation = plan.spec(MigrationKind.CID_ROTATION)
        assert rotation.delay_ms is None
        assert rotation.effective_delay_ms == DEFAULT_DELAY_MS[MigrationKind.CID_ROTATION]
        assert parse_migration_plan(plan.to_string()).to_string() == plan.to_string()

    @pytest.mark.parametrize(
        "text",
        (
            "teleport:0.5",          # unknown kind
            "nat-rebind:1.5",        # probability out of range
            "nat-rebind",            # missing probability
            "nat-rebind:0.5,nat-rebind:0.2",  # duplicate kind
            "nat-rebind:0.5:-10",    # negative delay
        ),
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_migration_plan(text)

    def test_kind_properties(self):
        assert MigrationKind.NAT_REBIND.changes_tuple
        assert not MigrationKind.NAT_REBIND.changes_cid
        assert MigrationKind.CID_ROTATION.changes_cid
        assert not MigrationKind.CID_ROTATION.changes_tuple
        assert MigrationKind.PATH_MIGRATION.changes_tuple
        assert MigrationKind.PATH_MIGRATION.changes_cid
        assert MigrationKind.NAT_REBIND.linkable
        assert MigrationKind.CID_ROTATION.linkable
        assert not MigrationKind.PATH_MIGRATION.linkable

    def test_draw_is_deterministic(self):
        a = PLAN.draw(random.Random(5), start_ms=100.0)
        b = PLAN.draw(random.Random(5), start_ms=100.0)
        assert a == b

    def test_draw_probability_extremes(self):
        never = MigrationPlan((MigrationSpec(MigrationKind.NAT_REBIND, 0.0),))
        always = MigrationPlan((MigrationSpec(MigrationKind.NAT_REBIND, 1.0),))
        assert never.draw(random.Random(0), 0.0) is None
        drawn = always.draw(random.Random(0), 0.0)
        assert drawn is not None
        assert drawn.kind is MigrationKind.NAT_REBIND
        assert drawn.new_client_addr is not None
        # Delay jitter stays within 0.5x-1.5x of the nominal delay.
        nominal = DEFAULT_DELAY_MS[MigrationKind.NAT_REBIND]
        assert 0.5 * nominal <= drawn.at_ms <= 1.5 * nominal

    def test_draw_order_stable_when_later_kinds_added(self):
        """Probability draws consume the stream in fixed enum order, so
        arming an additional later kind never changes whether an earlier
        kind fires."""
        base = MigrationPlan((MigrationSpec(MigrationKind.NAT_REBIND, 0.4),))
        extended = MigrationPlan(
            (
                MigrationSpec(MigrationKind.NAT_REBIND, 0.4),
                MigrationSpec(MigrationKind.PATH_MIGRATION, 0.9),
            )
        )
        for seed in range(50):
            a = base.draw(random.Random(seed), 0.0)
            b = extended.draw(random.Random(seed), 0.0)
            if a is not None:
                assert b is not None and b.kind is MigrationKind.NAT_REBIND
                assert b.at_ms == a.at_ms


class TestTcpSegments:
    def test_roundtrip(self):
        segment = TcpSegment(443, 51234, 1000, 42, True, 0x10, 300)
        decoded = decode_tcp_segment(encode_tcp_segment(segment))
        assert decoded == segment

    def test_never_quic_ambiguous(self):
        """An encoded segment's first byte can never look like QUIC."""
        wire = encode_tcp_segment(TcpSegment(443, 50000, 1, 1, False, 0x10, 0))
        assert wire[0] & 0xC0 == 0
        with pytest.raises(ValueError):
            # Source port 0x4000 puts the QUIC fixed bit in the first byte.
            encode_tcp_segment(TcpSegment(0x4000, 50000, 1, 1, False, 0x10, 0))

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_tcp_segment(b"\x00" * 10)  # too short
        bad_offset = bytearray(encode_tcp_segment(TcpSegment(443, 1, 1, 1, False, 0, 0)))
        bad_offset[12] = 0x20  # data offset 2 words < 5
        with pytest.raises(ValueError):
            decode_tcp_segment(bytes(bad_offset))


class TestFlowKeyResolver:
    TUPLE = ("10.0.0.1", 40000, "198.18.0.1", 443)

    def test_empty_cid_uses_tuple_namespace(self):
        resolver = FlowKeyResolver()
        assert resolver.resolve("", self.TUPLE) == tuple_flow_key(self.TUPLE)
        assert resolver.resolve("", None) == "(empty)"

    def test_classification_counters(self):
        resolver = FlowKeyResolver()
        tcp = encode_tcp_segment(TcpSegment(443, 50000, 1, 1, True, 0x10, 0))
        assert resolver.classify_non_quic(tcp, self.TUPLE) == "tcp"
        assert resolver.classify_non_quic(b"\x00\x01", self.TUPLE) == "unparseable"
        resolver.note_quic_datagram()
        counters = resolver.counters()
        assert counters["transport_mix"] == {"quic": 1, "tcp": 1, "unparseable": 1}
        assert counters["tcp_flows"] == 1


class TestMuxMigration:
    """End-to-end: seeded chaos through the real multiplexer."""

    TRAFFIC = dict(flows=40, seed=7, migration=PLAN, tcp_flows=6)

    def summary(self, cid_linkage=True):
        return run_monitor(
            TrafficConfig(**self.TRAFFIC),
            MonitorConfig(track_migration=True, cid_linkage=cid_linkage),
        )

    def test_linkable_migrations_keep_one_flow(self):
        """Acceptance: with linkage every linkable migrated flow keeps
        one flow id — no splits, and flows_created equals the number of
        QUIC flows generated."""
        summary = self.summary()
        migration = summary.migration
        assert summary.flows_created == self.TRAFFIC["flows"]
        assert migration["flows_split"] == 0
        assert migration["flows_migrated"] > 0
        assert migration["rebinds_seen"] > 0
        assert migration["tcp_flows"] == self.TRAFFIC["tcp_flows"]
        mix = migration["transport_mix"]
        assert mix["tcp"] > 0 and mix["quic"] > 0 and mix["unparseable"] == 0
        injected = migration["injected"]
        assert injected["applied"] <= injected["flows_drawn"]
        assert injected["applied"] > 0

    def test_linkage_off_splits_flows(self):
        linked = self.summary(cid_linkage=True)
        unlinked = self.summary(cid_linkage=False)
        assert unlinked.migration["flows_split"] > 0
        assert unlinked.flows_created == (
            linked.flows_created + unlinked.migration["flows_split"]
        )
        # TCP segments never raise regardless of linkage.
        assert unlinked.parse_errors == linked.parse_errors == 0

    def test_replay_single_matches_stream_under_migration(self):
        """Per-flow isolation survives migration: replaying one flow
        alone reproduces exactly its datagrams from the full stream."""
        mux = TrafficMux(TrafficConfig(**self.TRAFFIC))
        migrated_index = next(iter(sorted(mux.migrations)))
        from_stream = [
            (tap.time_ms, tap.data, tap.tuple4)
            for tap in mux.stream()
            if tap.flow_index == migrated_index
        ]
        replayed = [
            (tap.time_ms, tap.data, tap.tuple4)
            for tap in mux.replay_single(migrated_index)
        ]
        assert replayed == from_stream
        assert len(replayed) > 0

    def test_stream_is_deterministic(self):
        taps = lambda: [
            (tap.time_ms, tap.flow_index, tap.data, tap.tuple4, tap.transport)
            for tap in TrafficMux(TrafficConfig(**self.TRAFFIC)).stream()
        ]
        assert taps() == taps()

    def test_tcp_taps_carry_transport_ground_truth(self):
        mux = TrafficMux(TrafficConfig(**self.TRAFFIC))
        transports = {tap.transport for tap in mux.stream()}
        assert transports == {"quic", "tcp"}


class TestWindowAccounting:
    def test_migrated_flow_counted_once_per_window(self):
        """A CID rotation mid-window must not double-count the flow in
        the window's distinct-flow set (linkage keeps one flow key)."""
        from repro.monitor.pipeline import MonitorPipeline
        from repro.quic.connection_id import ConnectionId
        from repro.quic.datagram import QuicPacket, encode_datagram
        from repro.quic.frames import PingFrame
        from repro.quic.packet import ShortHeader

        def datagram(cid, pn, spin):
            return encode_datagram(
                [
                    QuicPacket(
                        header=ShortHeader(
                            destination_cid=ConnectionId(cid),
                            packet_number=pn,
                            spin_bit=spin,
                        ),
                        frames=(PingFrame(),),
                    )
                ]
            )

        snapshots = []
        pipeline = MonitorPipeline(
            MonitorConfig(track_migration=True),
            on_snapshot=snapshots.append,
        )
        tuple4 = ("10.0.0.1", 40000, "198.18.0.1", 443)
        pipeline.process(0.0, datagram(bytes([1] * 8), 0, False), tuple4)
        pipeline.process(100.0, datagram(bytes([2] * 8), 1, True), tuple4)
        summary = pipeline.finish()
        assert summary.flows_created == 1
        assert summary.migration["flows_migrated"] == 1
        (snapshot,) = snapshots
        assert snapshot.as_dict()["flows"]["distinct"] == 1


class TestByteIdentityWhenDisabled:
    """Migration machinery must be invisible to migration-free runs."""

    def snapshot_bytes(self, monitor=None, **traffic_kwargs):
        out = io.StringIO()
        run_monitor(
            TrafficConfig(flows=12, seed=3, **traffic_kwargs), monitor, out=out
        )
        return out.getvalue()

    def test_disabled_run_has_no_migration_keys(self):
        text = self.snapshot_bytes()
        assert '"migration"' not in text
        assert "transport_mix" not in text

    def test_disabled_runs_byte_identical_across_configs(self):
        """Passing an explicit resolver-less config, or none at all,
        changes nothing; repeated runs are byte-identical."""
        baseline = self.snapshot_bytes()
        assert self.snapshot_bytes() == baseline
        assert self.snapshot_bytes(monitor=MonitorConfig()) == baseline
        # cid_linkage is inert without track_migration.
        assert (
            self.snapshot_bytes(monitor=MonitorConfig(cid_linkage=False))
            == baseline
        )

    def test_migration_run_only_adds_keys(self):
        """The chaos run differs ONLY by addition: stripping migration
        blocks from its summary recovers the exact baseline fields minus
        sample/flow noise — cheap proxy: window line count unchanged."""
        import json

        baseline = self.snapshot_bytes()
        chaotic = self.snapshot_bytes(
            monitor=MonitorConfig(track_migration=True),
            migration=MigrationPlan(
                (MigrationSpec(MigrationKind.NAT_REBIND, 0.5),)
            ),
        )
        summary = json.loads(chaotic.splitlines()[-1])
        assert summary["type"] == "summary"
        assert "migration" in summary
        assert json.loads(baseline.splitlines()[-1])["type"] == "summary"


class TestLinkageStudy:
    def test_study_shows_linkage_advantage(self):
        from repro.analysis.migration import (
            render_migration_section,
            run_linkage_study,
        )

        result = run_linkage_study(
            TrafficConfig(flows=30, seed=7, migration=PLAN, tcp_flows=4)
        )
        linked = result["arms"]["linked"]
        unlinked = result["arms"]["unlinked"]
        assert linked["resolver"]["flows_split"] == 0
        assert unlinked["resolver"]["flows_split"] > 0
        assert unlinked["fragmented_flows"] > 0
        assert linked["fragmented_flows"] == 0
        assert (
            linked["migrated"]["mean_abs_rel_error_pct"]
            <= unlinked["migrated"]["mean_abs_rel_error_pct"]
        )
        text = render_migration_section(result)
        assert "CID linkage" in text
        assert "unlinked" in text
