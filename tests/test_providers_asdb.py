"""Provider catalog and the synthetic AS database."""

import ipaddress

import pytest

from repro.internet.asdb import AsDatabase, IpAddr, build_default_asdb
from repro.internet.providers import (
    NO_QUIC_PROVIDERS,
    PROVIDERS,
    provider_by_name,
)
from repro.web.server_profiles import STACKS


class TestProviderCatalog:
    def test_stack_mixes_reference_known_stacks(self):
        for provider in PROVIDERS:
            for stack_name, _ in provider.stack_mix:
                assert stack_name in STACKS, f"{provider.name} uses unknown {stack_name}"

    def test_stack_mix_weights_sum_to_one(self):
        for provider in PROVIDERS:
            assert sum(w for _, w in provider.stack_mix) == pytest.approx(1.0)

    def test_table2_spin_expectations(self):
        """Expected per-connection spin shares derived from the stack
        mixes match the paper's Table 2 (within a few points)."""
        expectations = {
            "cloudflare": 0.0,
            "google": 0.001,
            "fastly": 0.0,
            "hostinger": 0.519,
            "ovh": 0.604,
            "a2hosting": 0.591,
            "singlehop": 0.591,
            "servercentral": 0.676,
        }
        for name, target in expectations.items():
            provider = provider_by_name(name)
            expected = sum(
                weight * STACKS[stack].spin_config.expected_spin_share()
                for stack, weight in provider.stack_mix
            )
            assert expected == pytest.approx(target, abs=0.04), name

    def test_prefixes_do_not_overlap(self):
        networks = [
            ipaddress.ip_network(p.v4_prefix)
            for p in (*PROVIDERS, *NO_QUIC_PROVIDERS)
        ]
        for index, a in enumerate(networks):
            for b in networks[index + 1 :]:
                assert not a.overlaps(b), f"{a} overlaps {b}"

    def test_lookup_by_name(self):
        assert provider_by_name("hostinger").org_name == "Hostinger"
        with pytest.raises(KeyError):
            provider_by_name("aws")

    def test_no_quic_providers_have_empty_mixes(self):
        for provider in NO_QUIC_PROVIDERS:
            assert not provider.supports_quic
            assert provider.stack_mix == ()


class TestAsDatabase:
    def test_named_provider_lookup(self):
        asdb = build_default_asdb()
        cloudflare = provider_by_name("cloudflare")
        base = int(ipaddress.ip_network(cloudflare.v4_prefix).network_address)
        entry = asdb.lookup(IpAddr(base + 100, 4))
        assert entry.asn == 13335
        assert entry.org_name == "Cloudflare"

    def test_ipv6_lookup(self):
        asdb = build_default_asdb()
        google = provider_by_name("google")
        base = int(ipaddress.ip_network(google.v6_prefix).network_address)
        entry = asdb.lookup(IpAddr(base + 5, 6))
        assert entry.org_name == "Google"

    def test_unrouted_ip_returns_none(self):
        asdb = build_default_asdb()
        assert asdb.lookup(IpAddr(int(ipaddress.IPv4Address("1.1.1.1")), 4)) is None

    def test_long_tail_slices_are_distinct_orgs(self):
        asdb = build_default_asdb()
        tail = provider_by_name("other-hosting")
        base = int(ipaddress.ip_network(tail.v4_prefix).network_address)
        first = asdb.lookup(IpAddr(base + 10, 4))
        second = asdb.lookup(IpAddr(base + 10 + 256, 4))
        assert first.org_name != second.org_name
        assert first.asn != second.asn

    def test_same_slice_same_org(self):
        asdb = build_default_asdb()
        tail = provider_by_name("other-hosting")
        base = int(ipaddress.ip_network(tail.v4_prefix).network_address)
        assert asdb.lookup(IpAddr(base + 1, 4)) == asdb.lookup(IpAddr(base + 2, 4))

    def test_version_mismatch_prefix_rejected(self):
        bad = provider_by_name("cloudflare")
        object.__setattr__  # frozen dataclass: construct a raw fake instead
        with pytest.raises(ValueError):
            AsDatabase(
                [
                    type(bad)(
                        **{
                            **bad.__dict__,
                            "name": "broken",
                            "v4_prefix": "2606:4700::/32",
                        }
                    )
                ]
            )


class TestIpAddr:
    def test_rendering(self):
        assert str(IpAddr(int(ipaddress.IPv4Address("10.0.0.1")), 4)) == "10.0.0.1"
        assert str(IpAddr(1, 6)) == "::1"

    def test_validation(self):
        with pytest.raises(ValueError):
            IpAddr(2**32, 4)
        with pytest.raises(ValueError):
            IpAddr(1, 5)

    def test_hashable_for_set_counting(self):
        assert len({IpAddr(1, 4), IpAddr(1, 4), IpAddr(1, 6)}) == 2
