"""Byte-exact QUIC header encoding, parsing, and datagram coalescing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.connection_id import ConnectionId
from repro.quic.datagram import QuicPacket, decode_datagram, encode_datagram
from repro.quic.frames import CryptoFrame, PaddingFrame, PingFrame
from repro.quic.packet import (
    HeaderParseError,
    LongHeader,
    LongPacketType,
    PacketType,
    ShortHeader,
    parse_header,
)
from repro.quic.version import QuicVersion

DCID = ConnectionId(bytes(range(8)))
SCID = ConnectionId(bytes(range(8, 16)))


class TestShortHeader:
    def test_roundtrip_preserves_all_bits(self):
        header = ShortHeader(
            destination_cid=DCID,
            packet_number=1234,
            spin_bit=True,
            key_phase=True,
            vec=2,
            largest_acked=1200,
        )
        parsed, offset = parse_header(header.encode(), short_dcid_length=8)
        assert isinstance(parsed, ShortHeader)
        assert parsed.spin_bit is True
        assert parsed.key_phase is True
        assert parsed.vec == 2
        assert parsed.destination_cid == DCID
        assert offset == len(header.encode())

    def test_spin_bit_is_bit_0x20(self):
        spin_on = ShortHeader(destination_cid=DCID, packet_number=0, spin_bit=True)
        spin_off = ShortHeader(destination_cid=DCID, packet_number=0, spin_bit=False)
        assert spin_on.encode()[0] & 0x20
        assert not spin_off.encode()[0] & 0x20

    def test_vec_occupies_reserved_bits(self):
        header = ShortHeader(destination_cid=DCID, packet_number=0, vec=3)
        assert header.encode()[0] & 0x18 == 0x18

    def test_default_reserved_bits_are_zero(self):
        header = ShortHeader(destination_cid=DCID, packet_number=0)
        assert header.encode()[0] & 0x18 == 0

    def test_invalid_vec_rejected(self):
        with pytest.raises(ValueError):
            ShortHeader(destination_cid=DCID, packet_number=0, vec=4)

    def test_truncated_header_rejected(self):
        header = ShortHeader(destination_cid=DCID, packet_number=0)
        with pytest.raises(HeaderParseError):
            parse_header(header.encode()[:4], short_dcid_length=8)


class TestLongHeader:
    def _header(self, long_type=LongPacketType.INITIAL, token=b""):
        return LongHeader(
            long_type=long_type,
            version=int(QuicVersion.VERSION_1),
            destination_cid=DCID,
            source_cid=SCID,
            packet_number=3,
            token=token,
            payload_length=100,
        )

    def test_roundtrip_initial_with_token(self):
        header = self._header(token=b"tok")
        parsed, _ = parse_header(header.encode(), short_dcid_length=8)
        assert isinstance(parsed, LongHeader)
        assert parsed.long_type is LongPacketType.INITIAL
        assert parsed.token == b"tok"
        assert parsed.version == int(QuicVersion.VERSION_1)
        assert parsed.source_cid == SCID
        assert parsed.payload_length == 100

    def test_roundtrip_handshake(self):
        header = self._header(long_type=LongPacketType.HANDSHAKE)
        parsed, _ = parse_header(header.encode(), short_dcid_length=8)
        assert parsed.packet_type is PacketType.HANDSHAKE

    def test_fixed_bit_required(self):
        data = bytearray(self._header().encode())
        data[0] &= ~0x40
        with pytest.raises(HeaderParseError):
            parse_header(bytes(data), short_dcid_length=8)

    def test_truncated_before_version(self):
        with pytest.raises(HeaderParseError):
            parse_header(self._header().encode()[:3], short_dcid_length=8)


class TestDatagramCoalescing:
    def _initial(self):
        return QuicPacket(
            header=LongHeader(
                long_type=LongPacketType.INITIAL,
                version=int(QuicVersion.VERSION_1),
                destination_cid=DCID,
                source_cid=SCID,
                packet_number=0,
            ),
            frames=(CryptoFrame(0, b"hello"),),
        )

    def _short(self, spin=True):
        return QuicPacket(
            header=ShortHeader(destination_cid=DCID, packet_number=1, spin_bit=spin),
            frames=(PingFrame(),),
        )

    def test_coalesced_roundtrip(self):
        datagram = encode_datagram([self._initial(), self._short()])
        packets = decode_datagram(datagram, short_dcid_length=8)
        assert len(packets) == 2
        assert packets[0].header.packet_type is PacketType.INITIAL
        assert packets[1].header.packet_type is PacketType.ONE_RTT
        assert packets[1].header.spin_bit is True

    def test_short_header_must_be_last(self):
        with pytest.raises(ValueError):
            encode_datagram([self._short(), self._initial()])

    def test_wire_lengths_partition_the_datagram(self):
        datagram = encode_datagram([self._initial(), self._short()])
        packets = decode_datagram(datagram, short_dcid_length=8)
        assert sum(p.wire_length for p in packets) == len(datagram)

    def test_bad_length_field_rejected(self):
        datagram = bytearray(encode_datagram([self._initial()]))
        datagram = datagram[:-3]  # truncate payload below the length field
        with pytest.raises(HeaderParseError):
            decode_datagram(bytes(datagram), short_dcid_length=8)


class TestConnectionId:
    def test_length_limit(self):
        with pytest.raises(ValueError):
            ConnectionId(b"x" * 21)

    def test_generate_is_deterministic_per_rng(self, rng):
        from repro._util.rng import derive_rng

        a = ConnectionId.generate(derive_rng(5, "cid"), 8)
        b = ConnectionId.generate(derive_rng(5, "cid"), 8)
        assert a == b and len(a) == 8

    def test_hex_rendering(self):
        assert ConnectionId(b"\x00\xff").hex == "00ff"


@given(
    pn=st.integers(min_value=0, max_value=2**30),
    spin=st.booleans(),
    key_phase=st.booleans(),
    vec=st.integers(min_value=0, max_value=3),
    cid_len=st.integers(min_value=0, max_value=20),
)
def test_short_header_roundtrip_property(pn, spin, key_phase, vec, cid_len):
    cid = ConnectionId(bytes(range(cid_len)))
    header = ShortHeader(
        destination_cid=cid,
        packet_number=pn,
        spin_bit=spin,
        key_phase=key_phase,
        vec=vec,
    )
    parsed, offset = parse_header(header.encode(), short_dcid_length=cid_len)
    assert parsed.spin_bit == spin
    assert parsed.key_phase == key_phase
    assert parsed.vec == vec
    assert parsed.destination_cid == cid
    # The truncated packet number matches the low bits of the full pn.
    assert parsed.packet_number == pn & ((1 << (8 * parsed.pn_length)) - 1)
    assert offset == len(header.encode())
