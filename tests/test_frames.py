"""QUIC frame encoding and parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.frames import (
    AckFrame,
    AckRange,
    ConnectionCloseFrame,
    CryptoFrame,
    FrameParseError,
    HandshakeDoneFrame,
    NewConnectionIdFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
    decode_frames,
    encode_frames,
)


def roundtrip(frames):
    return decode_frames(encode_frames(frames))


class TestSimpleFrames:
    def test_ping(self):
        (frame,) = roundtrip([PingFrame()])
        assert isinstance(frame, PingFrame)
        assert frame.is_ack_eliciting

    def test_padding_run_collapses(self):
        (frame,) = roundtrip([PaddingFrame(17)])
        assert isinstance(frame, PaddingFrame)
        assert frame.length == 17
        assert not frame.is_ack_eliciting

    def test_handshake_done(self):
        (frame,) = roundtrip([HandshakeDoneFrame()])
        assert isinstance(frame, HandshakeDoneFrame)


class TestAckFrame:
    def test_single_range(self):
        (frame,) = roundtrip([AckFrame(largest_acknowledged=9, ack_delay_us=4000)])
        assert frame.largest_acknowledged == 9
        assert frame.ranges == (AckRange(9, 9),)
        # The exponent (3) quantizes the delay to multiples of 8 us.
        assert frame.ack_delay_us == 4000 - (4000 % 8)

    def test_multiple_ranges(self):
        original = AckFrame(
            largest_acknowledged=20,
            ranges=(AckRange(18, 20), AckRange(10, 14), AckRange(2, 5)),
        )
        (frame,) = roundtrip([original])
        assert frame.ranges == (AckRange(18, 20), AckRange(10, 14), AckRange(2, 5))
        assert frame.acked_packet_numbers() == [20, 19, 18, 14, 13, 12, 11, 10, 5, 4, 3, 2]

    def test_largest_must_match_top_range(self):
        with pytest.raises(ValueError):
            AckFrame(largest_acknowledged=5, ranges=(AckRange(1, 3),))

    def test_not_ack_eliciting(self):
        assert not AckFrame(largest_acknowledged=0).is_ack_eliciting

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            AckRange(5, 3)


class TestStreamFrame:
    def test_roundtrip_with_fin(self):
        (frame,) = roundtrip([StreamFrame(stream_id=4, offset=100, data=b"abc", fin=True)])
        assert (frame.stream_id, frame.offset, frame.data, frame.fin) == (4, 100, b"abc", True)

    def test_roundtrip_without_fin(self):
        (frame,) = roundtrip([StreamFrame(stream_id=0, offset=0, data=b"", fin=False)])
        assert frame.fin is False

    def test_is_ack_eliciting(self):
        assert StreamFrame(0, 0, b"x").is_ack_eliciting


class TestCryptoFrame:
    def test_roundtrip(self):
        (frame,) = roundtrip([CryptoFrame(offset=7, data=b"\x01" * 40)])
        assert frame.offset == 7
        assert frame.data == b"\x01" * 40


class TestNewConnectionId:
    def test_roundtrip(self):
        original = NewConnectionIdFrame(
            sequence_number=2,
            retire_prior_to=1,
            connection_id=b"\xaa" * 8,
            stateless_reset_token=b"\x11" * 16,
        )
        (frame,) = roundtrip([original])
        assert frame == original

    def test_cid_length_validated(self):
        with pytest.raises(ValueError):
            NewConnectionIdFrame(0, 0, b"")

    def test_token_length_validated(self):
        with pytest.raises(ValueError):
            NewConnectionIdFrame(0, 0, b"\xaa" * 8, stateless_reset_token=b"short")


class TestConnectionClose:
    def test_transport_close(self):
        (frame,) = roundtrip(
            [ConnectionCloseFrame(error_code=7, frame_type=0x06, reason=b"bad")]
        )
        assert frame.error_code == 7
        assert frame.frame_type == 0x06
        assert frame.reason == b"bad"
        assert not frame.is_application

    def test_application_close(self):
        (frame,) = roundtrip([ConnectionCloseFrame(error_code=1, is_application=True)])
        assert frame.is_application


class TestMixedPayloads:
    def test_sequence_roundtrip(self):
        frames = [
            AckFrame(largest_acknowledged=3),
            StreamFrame(0, 0, b"data", fin=False),
            PaddingFrame(5),
            PingFrame(),
        ]
        decoded = roundtrip(frames)
        assert [type(f) for f in decoded] == [AckFrame, StreamFrame, PaddingFrame, PingFrame]

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(FrameParseError):
            decode_frames(b"\x21")

    def test_truncated_stream_rejected(self):
        encoded = encode_frames([StreamFrame(0, 0, b"0123456789")])
        with pytest.raises(FrameParseError):
            decode_frames(encoded[:-2])


@given(
    ranges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=6,
    ),
    delay=st.integers(min_value=0, max_value=10**6),
)
def test_ack_frame_roundtrip_property(ranges, delay):
    """Arbitrary non-overlapping range sets survive the wire encoding."""
    built = []
    floor = 0
    for start_offset, length in sorted(ranges):
        smallest = floor + start_offset
        largest = smallest + length
        built.append(AckRange(smallest, largest))
        floor = largest + 2  # keep ranges disjoint with a gap >= 1
    built.sort(key=lambda r: r.largest, reverse=True)
    original = AckFrame(
        largest_acknowledged=built[0].largest,
        ack_delay_us=delay & ~0x7,  # exponent-3 aligned
        ranges=tuple(built),
    )
    (decoded,) = decode_frames(encode_frames([original]))
    assert decoded.ranges == original.ranges
    assert decoded.ack_delay_us == original.ack_delay_us


@given(
    stream_id=st.integers(min_value=0, max_value=2**20),
    offset=st.integers(min_value=0, max_value=2**30),
    data=st.binary(max_size=512),
    fin=st.booleans(),
)
def test_stream_frame_roundtrip_property(stream_id, offset, data, fin):
    (decoded,) = decode_frames(
        encode_frames([StreamFrame(stream_id, offset, data, fin)])
    )
    assert decoded == StreamFrame(stream_id, offset, data, fin)
