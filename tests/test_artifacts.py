"""Artifact dataset export/import (Appendix B interface)."""

import io

import pytest

from conftest import make_connection_record
from repro.analysis.accuracy import accuracy_study
from repro.analysis.artifacts import (
    ArtifactFormatError,
    export_records,
    load_records,
    record_from_dict,
    record_to_dict,
)
from repro.core.classify import SpinBehaviour


def sample_records():
    spin = make_connection_record(
        packets=[(0.0, 0, False), (40.0, 1, True), (80.0, 2, False), (120.0, 3, True)],
        stack_rtts=[38.0, 39.5],
    )
    spin.negotiated_version = 1
    zero = make_connection_record(
        spin_rtts=[], stack_rtts=[20.0], behaviour=SpinBehaviour.ALL_ZERO
    )
    zero.observation.values_seen = {False}
    return [spin, zero]


class TestRoundTrip:
    def test_jsonl_roundtrip_preserves_analysis(self):
        records = sample_records()
        buffer = io.StringIO()
        assert export_records(records, buffer) == 2
        buffer.seek(0)
        loaded = load_records(buffer)
        assert len(loaded) == 2

        before = accuracy_study(records)
        after = accuracy_study(loaded)
        assert before.spin_received.connections == after.spin_received.connections
        assert [r.ratio for r in before.spin_received.results] == pytest.approx(
            [r.ratio for r in after.spin_received.results]
        )

    def test_fields_preserved(self):
        record = sample_records()[0]
        clone = record_from_dict(record_to_dict(record))
        assert clone.domain == record.domain
        assert clone.ip == record.ip
        assert clone.behaviour == record.behaviour
        assert clone.negotiated_version == 1
        assert clone.observation.rtts_received_ms == record.observation.rtts_received_ms
        assert clone.observation.edges_received == record.observation.edges_received
        assert clone.stack_rtts_ms == record.stack_rtts_ms

    def test_values_seen_roundtrip(self):
        record = sample_records()[1]
        clone = record_from_dict(record_to_dict(record))
        assert clone.observation.values_seen == {False}
        assert clone.observation.all_zero

    def test_ipv6_address_roundtrip(self):
        record = make_connection_record()
        record.ip = type(record.ip)(value=0x2A024780 << 96, version=6)
        record.ip_version = 6
        clone = record_from_dict(record_to_dict(record))
        assert clone.ip.version == 6
        assert str(clone.ip) == str(record.ip)


class TestErrorHandling:
    def test_unsupported_schema(self):
        data = record_to_dict(sample_records()[0])
        data["schema"] = 99
        with pytest.raises(ArtifactFormatError):
            record_from_dict(data)

    def test_missing_field(self):
        data = record_to_dict(sample_records()[0])
        del data["stack_rtts_ms"]
        with pytest.raises(ArtifactFormatError):
            record_from_dict(data)

    def test_invalid_json_line(self):
        with pytest.raises(ArtifactFormatError):
            load_records(io.StringIO("{not json}\n"))

    def test_blank_lines_skipped(self):
        buffer = io.StringIO()
        export_records(sample_records(), buffer)
        text = "\n" + buffer.getvalue() + "\n\n"
        assert len(load_records(io.StringIO(text))) == 2
