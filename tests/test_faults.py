"""Fault injection, resilience, and failure taxonomy (repro.faults).

Unit tests for the plan/spec parser, the deterministic fault draws, the
retry backoff schedules, the circuit breaker, and the exchange
classifier — plus integration tests asserting the PR's robustness
guarantees: a faulted scan completes, every failed exchange carries a
:class:`FailureKind`, and the taxonomy is byte-identical at any worker
count.
"""

from __future__ import annotations

import io
import json
from types import SimpleNamespace

import pytest

from repro._util.rng import derive_rng
from repro.analysis.artifacts import record_to_dict
from repro.faults import (
    BreakerPolicy,
    BurstLossImpairment,
    CircuitBreaker,
    DrawnFaults,
    FailureKind,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
    apply_circuit_breaker,
    classify_exchange,
    corrupt_datagram_stream,
    failure_summary,
    parse_fault_plan,
    render_failure_table,
    truncate_jsonl_lines,
)
from repro.monitor.snapshots import run_monitor
from repro.monitor.traffic import TrafficConfig
from repro.qlog import read_qlog_jsonl, write_qlog_jsonl
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import DomainScanResult, ScanConfig, Scanner

from conftest import make_connection_record


class TestFaultPlanParsing:
    def test_single_spec(self):
        plan = parse_fault_plan("blackhole:0.25")
        assert plan.specs == (FaultSpec(FaultKind.BLACKHOLE, 0.25),)
        assert not plan.is_empty

    def test_magnitude_and_multiple_kinds(self):
        plan = parse_fault_plan("loss-burst:0.2:0.95,reset:0.1:4")
        assert plan.spec(FaultKind.LOSS_BURST).magnitude == 0.95
        assert plan.spec(FaultKind.RESET).probability == 0.1
        assert plan.spec(FaultKind.BLACKHOLE) is None

    def test_default_magnitudes(self):
        plan = parse_fault_plan("slow-server:1.0")
        assert plan.spec(FaultKind.SLOW_SERVER).effective_magnitude == 20_000.0

    def test_to_string_round_trips(self):
        text = "blackhole:0.03,handshake-stall:0.05:2500,reset:0.1"
        plan = parse_fault_plan(text)
        assert parse_fault_plan(plan.to_string()) == plan

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind 'bogus'"):
            parse_fault_plan("bogus:0.5")

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="expected kind:probability"):
            parse_fault_plan("blackhole")
        with pytest.raises(ValueError, match="expected kind:probability"):
            parse_fault_plan("blackhole:0.5:1:2")

    def test_non_numeric(self):
        with pytest.raises(ValueError, match="non-numeric field"):
            parse_fault_plan("blackhole:often")

    def test_empty_plan(self):
        with pytest.raises(ValueError, match="empty fault plan"):
            parse_fault_plan(" , ")

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="must be in \\[0, 1\\]"):
            parse_fault_plan("blackhole:1.5")

    def test_magnitude_must_be_positive(self):
        with pytest.raises(ValueError, match="must be positive"):
            parse_fault_plan("reset:0.5:0")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault kind"):
            parse_fault_plan("reset:0.5,reset:0.2")

    def test_zero_probability_plan_is_empty(self):
        assert parse_fault_plan("blackhole:0").is_empty
        assert FaultPlan().is_empty


class TestFaultDraws:
    PLAN = parse_fault_plan(
        "blackhole:0.3,handshake-stall:0.4,vn-failure:0.3,"
        "reset:0.4,slow-server:0.4,loss-burst:0.4"
    )

    def test_same_seed_same_draw(self):
        for label in ("a.example", "b.example", "c.example"):
            first = self.PLAN.draw(derive_rng(42, label, "faults"))
            again = self.PLAN.draw(derive_rng(42, label, "faults"))
            assert first == again

    def test_spelling_order_does_not_matter(self):
        forward = parse_fault_plan("blackhole:0.5,reset:0.5")
        reverse = parse_fault_plan("reset:0.5,blackhole:0.5")
        for seed in range(30):
            rng_a = derive_rng(seed, "draw")
            rng_b = derive_rng(seed, "draw")
            assert forward.draw(rng_a) == reverse.draw(rng_b)

    def test_empty_plan_draws_nothing(self):
        drawn = FaultPlan().draw(derive_rng(1, "x"))
        assert drawn == DrawnFaults()
        assert not drawn.any_active

    def test_export_side_kinds_consume_no_randomness(self):
        # qlog-truncate / corrupt-datagram apply outside the exchange;
        # their presence must not shift the scan-side draw stream.
        with_export = parse_fault_plan("qlog-truncate:1.0,reset:0.5")
        without = parse_fault_plan("reset:0.5")
        for seed in range(30):
            assert with_export.draw(derive_rng(seed, "d")) == without.draw(
                derive_rng(seed, "d")
            )

    def test_drawn_faults_eventually_cover_all_kinds(self):
        seen_reset = seen_blackhole = seen_vn = False
        for seed in range(200):
            drawn = self.PLAN.draw(derive_rng(seed, "coverage"))
            seen_reset = seen_reset or drawn.reset_after_packets is not None
            seen_blackhole = seen_blackhole or drawn.blackhole
            seen_vn = seen_vn or drawn.vn_failure
        assert seen_reset and seen_blackhole and seen_vn

    def test_burst_loss_window(self):
        burst = BurstLossImpairment(
            start_ms=100.0, duration_ms=50.0, loss_probability=1.0
        )
        rng = derive_rng(7, "burst")
        before = rng.getstate()
        assert not burst(99.9, rng)
        assert not burst(150.0, rng)
        # Outside the window no RNG draw happens (fault-free packets
        # stay on their usual random stream).
        assert rng.getstate() == before
        assert burst(100.0, rng)
        assert rng.getstate() != before


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay_ms=100.0,
            multiplier=2.0,
            max_delay_ms=500.0,
            jitter_fraction=0.0,
        )
        schedule = policy.schedule_ms(derive_rng(1, "unused"))
        assert schedule == [100.0, 200.0, 400.0, 500.0, 500.0]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_ms=100.0, jitter_fraction=0.25)
        for seed in range(50):
            delay = policy.delay_ms(0, derive_rng(seed, "jitter"))
            assert 100.0 <= delay <= 125.0

    def test_schedule_is_a_pure_function_of_the_seed(self):
        # Satellite property test: same seed => identical retry
        # schedules, across policies and repeated evaluation.
        policy = RetryPolicy(max_attempts=5)
        for seed in range(25):
            first = policy.schedule_ms(derive_rng(seed, "retry"))
            again = policy.schedule_ms(derive_rng(seed, "retry"))
            assert first == again
            assert len(first) == 4


class TestCircuitBreaker:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_attempts=0)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        for _ in range(2):
            assert breaker.allows()
            breaker.record(False)
        assert not breaker.is_open
        assert breaker.trips == 0

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        for outcome in (False, False, True, False, False):
            assert breaker.allows()
            breaker.record(outcome)
        assert not breaker.is_open

    def test_trips_and_skips_cooldown(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, cooldown_attempts=3)
        )
        for _ in range(2):
            assert breaker.allows()
            breaker.record(False)
        assert breaker.is_open
        assert breaker.trips == 1
        for _ in range(3):
            assert not breaker.allows()
        assert breaker.skipped == 3

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, cooldown_attempts=1)
        )
        breaker.record(False)
        breaker.record(False)
        assert not breaker.allows()  # the one cooldown skip
        assert breaker.allows()  # half-open probe goes through
        breaker.record(True)
        assert not breaker.is_open
        # Closed again: a single failure does not re-trip.
        breaker.record(False)
        assert not breaker.is_open

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, cooldown_attempts=2)
        )
        breaker.record(False)
        breaker.record(False)
        assert not breaker.allows()
        assert not breaker.allows()
        assert breaker.allows()  # half-open probe
        breaker.record(False)  # probe fails: straight back to open
        assert breaker.is_open
        assert breaker.trips == 2


class TestApplyCircuitBreaker:
    @staticmethod
    def _result(domain, success: bool) -> DomainScanResult:
        record = make_connection_record(
            spin_rtts=[20.0], stack_rtts=[20.0], domain=domain.name
        )
        record.success = success
        if not success:
            record.failure = FailureKind.UNREACHABLE
        return DomainScanResult(
            domain=domain,
            resolved=True,
            quic_support=success,
            connections=[record],
        )

    def test_short_circuits_after_threshold(self, tiny_population):
        domains = tiny_population.domains[:8]
        policy = BreakerPolicy(failure_threshold=2, cooldown_attempts=3)
        results = [self._result(d, success=False) for d in domains]
        breakers = apply_circuit_breaker(results, policy, key_of=lambda r: "p")
        # Results 0-1 trip the breaker, 2-4 are skipped, 5 is the
        # half-open probe (fails, re-opens), 6-7 are skipped again.
        assert breakers["p"].trips == 2
        skipped = [r for r in results if r.failure is FailureKind.CIRCUIT_OPEN]
        assert [results.index(r) for r in skipped] == [2, 3, 4, 6, 7]
        for result in skipped:
            assert len(result.connections) == 1
            assert not result.quic_support
            record = result.connections[0]
            assert not record.success
            assert record.failure is FailureKind.CIRCUIT_OPEN
            assert record.domain == result.domain.name

    def test_connectionless_results_carry_no_signal(self, tiny_population):
        domains = tiny_population.domains[:6]
        policy = BreakerPolicy(failure_threshold=2, cooldown_attempts=2)
        results = []
        for index, domain in enumerate(domains):
            if index % 2 == 0:
                results.append(self._result(domain, success=False))
            else:
                results.append(
                    DomainScanResult(domain=domain, resolved=False, quic_support=False)
                )
        apply_circuit_breaker(results, policy, key_of=lambda r: "p")
        for result in results:
            if not result.connections:
                assert result.failure is None

    def test_keys_are_independent(self, tiny_population):
        domains = tiny_population.domains[:6]
        policy = BreakerPolicy(failure_threshold=3, cooldown_attempts=2)
        results = [self._result(d, success=False) for d in domains]
        keys = ["a", "b", "a", "b", "a", "b"]
        breakers = apply_circuit_breaker(
            results, policy, key_of=lambda r: keys[results.index(r)]
        )
        # Each key saw only 3 failures: exactly at threshold, no skips yet.
        assert breakers["a"].trips == 1 and breakers["a"].skipped == 0
        assert breakers["b"].trips == 1 and breakers["b"].skipped == 0


def _exchange(
    success=False,
    failure_reason="",
    peer_close_error_code=0,
    handshake_complete=True,
    received=5,
    timed_out=False,
):
    return SimpleNamespace(
        success=success,
        failure_reason=failure_reason,
        client=SimpleNamespace(
            peer_close_error_code=peer_close_error_code,
            handshake_complete=handshake_complete,
        ),
        recorder=SimpleNamespace(received=list(range(received))),
        timed_out=timed_out,
    )


class TestClassifyExchange:
    def test_success_is_unclassified(self):
        assert classify_exchange(_exchange(success=True)) is None

    def test_version_negotiation(self):
        exchange = _exchange(failure_reason="version negotiation failed: no common version")
        assert classify_exchange(exchange) is FailureKind.VERSION_NEGOTIATION

    def test_connection_reset(self):
        exchange = _exchange(peer_close_error_code=0x6)
        assert classify_exchange(exchange) is FailureKind.CONNECTION_RESET

    def test_timeout_after_handshake_is_stalled(self):
        exchange = _exchange(timed_out=True, handshake_complete=True)
        assert classify_exchange(exchange) is FailureKind.STALLED

    def test_timeout_with_silence_is_unreachable(self):
        exchange = _exchange(timed_out=True, handshake_complete=False, received=0)
        assert classify_exchange(exchange) is FailureKind.UNREACHABLE

    def test_timeout_mid_handshake(self):
        exchange = _exchange(timed_out=True, handshake_complete=False, received=3)
        assert classify_exchange(exchange) is FailureKind.HANDSHAKE_TIMEOUT

    def test_pto_exhausted_variants(self):
        application = _exchange(failure_reason="pto exhausted (application)")
        assert classify_exchange(application) is FailureKind.PTO_EXHAUSTED
        silent = _exchange(failure_reason="pto exhausted (handshake)", received=0)
        assert classify_exchange(silent) is FailureKind.UNREACHABLE
        mid = _exchange(failure_reason="pto exhausted (handshake)", received=2)
        assert classify_exchange(mid) is FailureKind.HANDSHAKE_TIMEOUT

    def test_fallback_is_incomplete(self):
        assert classify_exchange(_exchange()) is FailureKind.INCOMPLETE


class TestFailureSummary:
    def test_counts_in_enum_order(self):
        records = [
            SimpleNamespace(success=True, failure=None),
            SimpleNamespace(success=False, failure=FailureKind.INCOMPLETE),
            SimpleNamespace(success=False, failure=FailureKind.UNREACHABLE),
            SimpleNamespace(success=False, failure=FailureKind.UNREACHABLE),
            SimpleNamespace(success=False, failure=None),
        ]
        summary = failure_summary(records)
        assert summary["total"] == 5
        assert summary["succeeded"] == 1
        assert summary["failed"] == 4
        assert list(summary["kinds"]) == ["unreachable", "incomplete", "unclassified"]
        assert summary["kinds"]["unreachable"] == 2

    def test_render_table(self):
        summary = failure_summary(
            [SimpleNamespace(success=False, failure=FailureKind.STALLED)]
        )
        table = render_failure_table(summary)
        assert "failed" in table
        assert "stalled" in table
        assert "100.0 %" in table


# A plan aggressive enough that a few-hundred-domain scan exercises
# several kinds, plus retries/timeouts/breaker on the absorbing side.
CHAOS_PLAN = parse_fault_plan(
    "blackhole:0.04,handshake-stall:0.06,vn-failure:0.04,"
    "reset:0.06,slow-server:0.05,loss-burst:0.05"
)
CHAOS_RESILIENCE = ResilienceConfig(
    connect_timeout_ms=20_000.0,
    domain_budget_ms=120_000.0,
    retry=RetryPolicy(max_attempts=2),
    breaker=BreakerPolicy(failure_threshold=4, cooldown_attempts=6),
)


@pytest.fixture(scope="module")
def chaos_scans(tiny_population):
    """The same faulted scan at --workers 1 and --workers 4."""
    config = ScanConfig(faults=CHAOS_PLAN, resilience=CHAOS_RESILIENCE)
    domains = tiny_population.domains[:400]
    sequential = Scanner(tiny_population, config).scan(domains=domains)
    sharded = Scanner(
        tiny_population, config, parallel=ParallelScanConfig(workers=4)
    ).scan(domains=domains)
    return domains, sequential, sharded


class TestFaultedScan:
    def test_completes_with_nonzero_fault_plan(self, chaos_scans):
        domains, sequential, _ = chaos_scans
        assert len(sequential.results) == len(domains)

    def test_every_failed_exchange_is_classified(self, chaos_scans):
        _, sequential, _ = chaos_scans
        for record in sequential.connection_records():
            if record.success:
                assert record.failure is None
            else:
                assert isinstance(record.failure, FailureKind)

    def test_multiple_kinds_observed(self, chaos_scans):
        _, sequential, _ = chaos_scans
        kinds = {
            r.failure for r in sequential.connection_records() if r.failure is not None
        }
        assert len(kinds) >= 3

    def test_domain_failure_mirrors_last_connection(self, chaos_scans):
        _, sequential, _ = chaos_scans
        for result in sequential.results:
            if result.connections and not result.quic_support:
                assert result.failure == result.connections[-1].failure

    def test_dataset_identical_across_worker_counts(self, chaos_scans):
        _, sequential, sharded = chaos_scans
        a = [record_to_dict(r) for r in sequential.connection_records()]
        b = [record_to_dict(r) for r in sharded.connection_records()]
        assert a == b

    def test_taxonomy_identical_across_worker_counts(self, chaos_scans):
        _, sequential, sharded = chaos_scans
        summary_1 = failure_summary(sequential.connection_records())
        summary_4 = failure_summary(sharded.connection_records())
        assert summary_1 == summary_4
        assert render_failure_table(summary_1) == render_failure_table(summary_4)
        assert summary_1["failed"] > 0


class TestFaultsDisabledIdentity:
    def test_zero_probability_plan_equals_plain_scan(self, tiny_population):
        domains = tiny_population.domains[:150]
        plain = Scanner(tiny_population, ScanConfig()).scan(domains=domains)
        armed_off = Scanner(
            tiny_population,
            ScanConfig(faults=parse_fault_plan("blackhole:0,reset:0")),
        ).scan(domains=domains)
        a = [record_to_dict(r) for r in plain.connection_records()]
        b = [record_to_dict(r) for r in armed_off.connection_records()]
        assert a == b

    def test_no_failure_key_without_faults(self, tiny_population):
        domains = tiny_population.domains[:60]
        dataset = Scanner(tiny_population, ScanConfig()).scan(domains=domains)
        for record in dataset.connection_records():
            assert record.failure is None
            assert "failure" not in record_to_dict(record)

    def test_faults_active_property(self):
        assert not ScanConfig().faults_active
        assert not ScanConfig(faults=parse_fault_plan("reset:0")).faults_active
        assert ScanConfig(faults=parse_fault_plan("reset:0.1")).faults_active
        assert ScanConfig(resilience=ResilienceConfig()).faults_active


@pytest.fixture(scope="module")
def qlog_documents(tiny_population):
    """A handful of real qlog documents from a sampled scan."""
    dataset = Scanner(tiny_population, ScanConfig(qlog_sample_rate=1.0)).scan(
        domains=tiny_population.domains[:40]
    )
    documents = [
        r.qlog for r in dataset.connection_records() if r.qlog is not None
    ]
    assert documents
    return documents


class TestQlogJsonlTolerance:
    def test_round_trip(self, qlog_documents):
        out = io.StringIO()
        count = write_qlog_jsonl(qlog_documents, out)
        assert count == len(qlog_documents)
        result = read_qlog_jsonl(io.StringIO(out.getvalue()))
        assert result.corrupt_records == 0
        assert len(result.recorders) == len(qlog_documents)

    def test_hand_truncated_final_line_is_counted(self, qlog_documents):
        # Satellite regression test: a crash-mid-write qlog file (last
        # line cut in half) must be read tolerantly, not crash the
        # reader, and the damage must be counted.
        out = io.StringIO()
        write_qlog_jsonl(qlog_documents, out)
        lines = out.getvalue().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        result = read_qlog_jsonl(io.StringIO("\n".join(lines) + "\n"))
        assert result.corrupt_records == 1
        assert len(result.recorders) == len(qlog_documents) - 1

    def test_non_object_lines_are_corrupt(self):
        stream = io.StringIO('[1,2,3]\n"text"\n\n')
        result = read_qlog_jsonl(stream)
        assert result.recorders == []
        assert result.corrupt_records == 2  # blank lines are skipped

    def test_truncate_jsonl_lines_deterministic(self, qlog_documents):
        lines = [json.dumps(doc, separators=(",", ":")) for doc in qlog_documents]
        plan = parse_fault_plan("qlog-truncate:0.5")
        first, count_first = truncate_jsonl_lines(lines, plan, seed=99)
        again, count_again = truncate_jsonl_lines(lines, plan, seed=99)
        assert first == again and count_first == count_again
        assert count_first > 0
        certain, count_all = truncate_jsonl_lines(
            lines, parse_fault_plan("qlog-truncate:1.0"), seed=99
        )
        assert count_all == len(lines)
        for cut, original in zip(certain, lines):
            assert len(cut) < len(original)

    def test_truncate_noop_without_spec(self, qlog_documents):
        lines = [json.dumps(doc) for doc in qlog_documents]
        assert truncate_jsonl_lines(lines, None, seed=1) == (lines, 0)
        plan = parse_fault_plan("reset:0.5")
        assert truncate_jsonl_lines(lines, plan, seed=1) == (lines, 0)


class TestMonitorFaults:
    TRAFFIC = TrafficConfig(flows=40, seed=7, arrival_window_ms=1_500.0)

    def test_corrupt_datagrams_counted_not_fatal(self):
        plan = parse_fault_plan("corrupt-datagram:0.08")
        summary = run_monitor(self.TRAFFIC, faults=plan)
        assert summary.parse_errors > 0
        assert summary.flows_created > 0

    def test_corrupt_datagrams_deterministic(self):
        plan = parse_fault_plan("corrupt-datagram:0.08")
        first = run_monitor(self.TRAFFIC, faults=plan)
        again = run_monitor(self.TRAFFIC, faults=plan)
        assert first.as_dict() == again.as_dict()

    def test_empty_plan_changes_nothing(self):
        clean = run_monitor(self.TRAFFIC)
        gated = run_monitor(self.TRAFFIC, faults=parse_fault_plan("corrupt-datagram:0"))
        assert clean.as_dict() == gated.as_dict()

    def test_corrupt_stream_preserves_timing(self):
        from repro.monitor.traffic import TrafficMux

        stream = list(TrafficMux(self.TRAFFIC).stream())
        rng = derive_rng(7, "monitor", "faults")
        mangled = list(corrupt_datagram_stream(iter(stream), 0.2, rng))
        assert len(mangled) == len(stream)
        shorter = 0
        for out, original in zip(mangled, stream):
            assert out.time_ms == original.time_ms
            if len(out.data) < len(original.data):
                shorter += 1
                assert len(out.data) <= 8
        assert shorter > 0


class TestCliHardening:
    """Config errors exit nonzero with one clean stderr line."""

    @staticmethod
    def _error_of(argv) -> str:
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        message = str(excinfo.value)
        assert message.startswith("repro: error: ")
        assert "\n" not in message
        assert "Traceback" not in message
        return message

    # Every error below fires during config validation, before any
    # output file is opened, so /dev/null never actually receives data.
    SMALL = ["--toplist", "50", "--czds", "200", "--out", "/dev/null"]

    def test_bad_fault_kind(self):
        message = self._error_of(["scan", *self.SMALL, "--fault", "gremlins:0.5"])
        assert "unknown fault kind" in message

    def test_fault_probability_out_of_range(self):
        message = self._error_of(["scan", *self.SMALL, "--fault", "blackhole:2.0"])
        assert "must be in [0, 1]" in message

    def test_bad_workers(self):
        message = self._error_of(["scan", *self.SMALL, "--workers", "-2"])
        assert "workers" in message

    def test_bad_qlog_sample_rate(self):
        message = self._error_of(["scan", *self.SMALL, "--qlog-sample-rate", "2.0"])
        assert "qlog_sample_rate" in message

    def test_negative_retries(self):
        message = self._error_of(["scan", *self.SMALL, "--retries", "-1"])
        assert "max_attempts" in message

    def test_bad_connect_timeout(self):
        message = self._error_of(
            ["scan", *self.SMALL, "--connect-timeout-ms", "-5"]
        )
        assert "connect_timeout_ms" in message

    def test_unreadable_analyze_input(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        message = self._error_of(["analyze", str(missing)])
        assert "cannot read" in message

    def test_monitor_bad_fault(self):
        message = self._error_of(
            [
                "monitor", "--flows", "5", "--out", "/dev/null",
                "--fault", "blackhole:nan",
            ]
        )
        assert "must be in [0, 1]" in message
