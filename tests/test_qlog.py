"""qlog capture: recorder, writer, reader round-trips."""

import io
import json

import pytest

from repro.qlog.reader import QlogParseError, qlog_to_recorder, read_qlog
from repro.qlog.recorder import TraceRecorder
from repro.qlog.writer import recorder_to_qlog, write_qlog


def sample_recorder() -> TraceRecorder:
    recorder = TraceRecorder(vantage_point="client", odcid_hex="c0ffee")
    recorder.metadata = {"domain": "example.com"}
    recorder.on_packet_sent(0.0, "initial", 0, None, 1200)
    recorder.on_packet_received(25.0, "initial", 0, None, 160)
    recorder.on_packet_received(60.0, "1RTT", 0, False, 40)
    recorder.on_packet_received(100.0, "1RTT", 1, True, 1252, vec=2)
    recorder.on_rtt_sample(25.0, 25.0, 25.0, 0.0, 25.0, 25.0)
    return recorder


class TestRecorder:
    def test_short_header_extraction(self):
        recorder = sample_recorder()
        short = recorder.received_short_header_packets()
        assert [event.packet_number for event in short] == [0, 1]
        assert short[1].vec == 2

    def test_stack_rtts(self):
        assert sample_recorder().stack_rtts_ms() == [25.0]


class TestWriter:
    def test_document_structure(self):
        document = recorder_to_qlog(sample_recorder(), title="t")
        assert document["qlog_version"] == "0.3"
        trace = document["traces"][0]
        assert trace["vantage_point"]["type"] == "client"
        assert trace["common_fields"]["ODCID"] == "c0ffee"
        assert trace["common_fields"]["custom_fields"] == {"domain": "example.com"}
        names = {event[1] for event in trace["events"]}
        assert names == {
            "transport:packet_sent",
            "transport:packet_received",
            "recovery:metrics_updated",
        }

    def test_events_sorted_by_time(self):
        events = recorder_to_qlog(sample_recorder())["traces"][0]["events"]
        times = [event[0] for event in events]
        assert times == sorted(times)

    def test_spin_bit_only_on_short_headers(self):
        events = recorder_to_qlog(sample_recorder())["traces"][0]["events"]
        for _, name, data in events:
            if not name.startswith("transport:"):
                continue
            header = data["header"]
            if header["packet_type"] == "1RTT":
                assert "spin_bit" in header
            else:
                assert "spin_bit" not in header

    def test_json_serializable(self):
        json.dumps(recorder_to_qlog(sample_recorder()))


class TestRoundTrip:
    def test_writer_reader_identity(self):
        original = sample_recorder()
        recovered = qlog_to_recorder(recorder_to_qlog(original))
        assert recovered.sent == original.sent
        assert recovered.received == original.received
        assert recovered.rtt_samples == original.rtt_samples
        assert recovered.odcid_hex == original.odcid_hex
        assert recovered.metadata == original.metadata

    def test_stream_roundtrip(self):
        buffer = io.StringIO()
        write_qlog(sample_recorder(), buffer, title="x")
        buffer.seek(0)
        recovered = read_qlog(buffer)
        assert len(recovered.received) == 3

    def test_observation_survives_roundtrip(self):
        from repro.core.observer import observe_recorder

        original = sample_recorder()
        recovered = qlog_to_recorder(recorder_to_qlog(original))
        assert (
            observe_recorder(recovered).rtts_received_ms
            == observe_recorder(original).rtts_received_ms
        )


class TestReaderRobustness:
    def test_unknown_event_names_tolerated(self):
        document = recorder_to_qlog(sample_recorder())
        document["traces"][0]["events"].append([5.0, "http:frames_processed", {}])
        recorder = qlog_to_recorder(document)
        assert len(recorder.received) == 3

    def test_missing_traces_rejected(self):
        with pytest.raises(QlogParseError):
            qlog_to_recorder({"qlog_version": "0.3"})

    def test_malformed_event_rejected(self):
        document = recorder_to_qlog(sample_recorder())
        document["traces"][0]["events"].append(["no-name"])
        with pytest.raises(QlogParseError):
            qlog_to_recorder(document)

    def test_invalid_json_stream(self):
        with pytest.raises(QlogParseError):
            read_qlog(io.StringIO("not json"))

    def test_non_object_document(self):
        with pytest.raises(QlogParseError):
            read_qlog(io.StringIO("[1, 2]"))
