"""Campaign calendar and longitudinal runs."""

import pytest

from repro.campaign.runner import CampaignRunner, LongitudinalResult
from repro.campaign.schedule import DEFAULT_CAMPAIGN, CalendarWeek, Campaign
from repro.internet.population import PopulationConfig, build_population
from repro.web.scanner import ScanDataset


class TestCalendarWeek:
    def test_label_roundtrip(self):
        week = CalendarWeek(2023, 20)
        assert week.label == "cw20-2023"
        assert CalendarWeek.from_label("cw20-2023") == week

    def test_from_label_validation(self):
        with pytest.raises(ValueError):
            CalendarWeek.from_label("week20")
        with pytest.raises(ValueError):
            CalendarWeek(2023, 54)

    def test_next_week(self):
        assert CalendarWeek(2023, 19).next() == CalendarWeek(2023, 20)

    def test_next_across_year_boundary(self):
        last_2022 = CalendarWeek(2022, 52)
        following = last_2022.next()
        assert following.year == 2023 and following.week == 1

    def test_serial_monotonic(self):
        weeks = [CalendarWeek(2022, 15), CalendarWeek(2022, 40), CalendarWeek(2023, 20)]
        serials = [w.serial for w in weeks]
        assert serials == sorted(serials)
        assert serials[0] >= 0

    def test_ordering(self):
        assert CalendarWeek(2022, 52) < CalendarWeek(2023, 1)


class TestCampaign:
    def test_default_campaign_span(self):
        weeks = DEFAULT_CAMPAIGN.weeks()
        assert weeks[0] == CalendarWeek(2022, 15)
        assert weeks[-1] == CalendarWeek(2023, 20)
        assert len(weeks) == 58  # 2022 has 52 ISO weeks

    def test_select_spread_weeks(self):
        selected = DEFAULT_CAMPAIGN.select_spread_weeks(12)
        assert len(selected) == 12
        assert selected[0] == CalendarWeek(2022, 15)
        assert selected[-1] == CalendarWeek(2023, 20)
        assert selected == sorted(selected)

    def test_select_all_weeks(self):
        campaign = Campaign(CalendarWeek(2023, 1), CalendarWeek(2023, 4))
        assert campaign.select_spread_weeks(4) == campaign.weeks()

    def test_select_validation(self):
        campaign = Campaign(CalendarWeek(2023, 1), CalendarWeek(2023, 4))
        with pytest.raises(ValueError):
            campaign.select_spread_weeks(1)
        with pytest.raises(ValueError):
            campaign.select_spread_weeks(10)

    def test_ipv6_weeks_subset(self):
        ipv6 = DEFAULT_CAMPAIGN.ipv6_weeks()
        all_weeks = set(DEFAULT_CAMPAIGN.weeks())
        assert set(ipv6) <= all_weeks
        assert DEFAULT_CAMPAIGN.weeks()[-1] in ipv6

    def test_invalid_campaign(self):
        with pytest.raises(ValueError):
            Campaign(CalendarWeek(2023, 10), CalendarWeek(2023, 5))


class TestLongitudinalRuns:
    @pytest.fixture(scope="class")
    def longitudinal(self):
        population = build_population(
            PopulationConfig(toplist_domains=0, czds_domains=500, seed=21)
        )
        runner = CampaignRunner(population, DEFAULT_CAMPAIGN)
        domains = [d for d in population.domains if d.quic_enabled]
        return runner.run_longitudinal(4, domains=domains)

    def test_one_dataset_per_week(self, longitudinal):
        assert len(longitudinal.datasets) == 4
        assert len(longitudinal.weeks) == 4
        assert all(isinstance(d, ScanDataset) for d in longitudinal.datasets)

    def test_weekly_activity_requires_connection_every_week(self, longitudinal):
        activity = longitudinal.weekly_spin_activity()
        for name, flags in activity.items():
            assert len(flags) == 4

    def test_activity_flags_match_datasets(self, longitudinal):
        activity = longitudinal.weekly_spin_activity()
        for week_index, dataset in enumerate(longitudinal.datasets):
            for result in dataset.results:
                if result.domain.name in activity:
                    assert activity[result.domain.name][week_index] == (
                        result.quic_support and result.shows_spin_activity
                    )

    def test_run_week_full_population(self):
        population = build_population(
            PopulationConfig(toplist_domains=30, czds_domains=80, seed=22)
        )
        runner = CampaignRunner(population, DEFAULT_CAMPAIGN)
        dataset = runner.run_week(CalendarWeek(2023, 20))
        assert dataset.week_label == "cw20-2023"
        assert len(dataset.results) == 110
