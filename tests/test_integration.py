"""End-to-end integration: population → scan → full analysis pipeline.

These tests run the real byte-level simulation over a small population
and check the *qualitative* invariants the paper reports.  Quantitative
shape assertions at calibrated scale live in the benchmark harness.
"""

import pytest

from repro.analysis.accuracy import accuracy_study
from repro.analysis.asorg import organization_table
from repro.analysis.compliance import compliance_histogram
from repro.analysis.config import configuration_table
from repro.analysis.support import support_overview
from repro.analysis.webserver import webserver_shares
from repro.campaign.runner import CampaignRunner
from repro.campaign.schedule import DEFAULT_CAMPAIGN
from repro.core.classify import SpinBehaviour
from repro.internet.asdb import build_default_asdb
from repro.internet.population import ListGroup
from repro.web.scanner import Scanner


@pytest.fixture(scope="module")
def scan(tiny_population):
    return Scanner(tiny_population).scan(week_label="cw20-2023", ip_version=4)


class TestSupportPipeline:
    def test_monotonic_funnel(self, scan, tiny_population):
        """total >= resolved >= quic >= spin for every view."""
        overview = support_overview(scan, tiny_population)
        for group in ListGroup:
            row = overview.row(group)
            assert row.domains_total >= row.domains_resolved
            assert row.domains_resolved >= row.domains_quic
            assert row.domains_quic >= row.domains_spin
            assert row.ips_resolved >= row.ips_quic >= row.ips_spin

    def test_spin_share_in_plausible_band(self, scan, tiny_population):
        overview = support_overview(scan, tiny_population)
        czds = overview.row(ListGroup.CZDS)
        assert czds.domains_quic > 50
        assert 0.02 < czds.domain_spin_share < 0.30

    def test_quic_ips_denser_than_domains(self, scan, tiny_population):
        """Shared hosting packs many QUIC domains per IP in the zone
        view (the paper's 1.2 % IP/domain ratio observation)."""
        overview = support_overview(scan, tiny_population)
        czds = overview.row(ListGroup.CZDS)
        assert czds.domains_per_quic_ip > 2.0


class TestOrganizationPipeline:
    def test_hyperscalers_lead_without_spinning(self, scan):
        table = organization_table(scan.connection_records(), build_default_asdb())
        assert table.top_rows[0].org_name in ("Cloudflare", "Google")
        cloudflare = table.row("Cloudflare")
        assert cloudflare.total_connections > 0
        assert cloudflare.spin_connections == 0
        fastly = table.row("Fastly")
        assert fastly.spin_connections == 0

    def test_spin_support_exists_outside_hyperscalers(self, scan):
        table = organization_table(scan.connection_records(), build_default_asdb())
        assert table.total_spin_connections > 0


class TestConfigurationPipeline:
    def test_all_zero_dominates(self, scan, tiny_population):
        table = configuration_table(scan, tiny_population)
        czds = table.row(ListGroup.CZDS)
        assert czds.all_zero_share > 0.7
        assert czds.all_zero > czds.spin > 0

    def test_counts_partition_quic_domains(self, scan, tiny_population):
        czds = configuration_table(scan, tiny_population).row(ListGroup.CZDS)
        classified = czds.all_zero + czds.all_one + czds.spin + czds.grease
        assert classified <= czds.quic_domains
        # NO_PACKETS connections are the only other bucket and are rare.
        assert classified >= czds.quic_domains * 0.95


class TestWebserverPipeline:
    def test_litespeed_family_dominates_spinning(self, scan):
        shares = webserver_shares(scan.connection_records(), spinning_only=True)
        if not shares:
            pytest.skip("no spinning connections at this scale")
        litespeed_family = sum(
            s.share
            for s in shares
            if "LiteSpeed" in s.server_header or "imunify" in s.server_header
        )
        assert litespeed_family > 0.5


class TestAccuracyPipeline:
    def test_overestimation_dominates(self, scan):
        study = accuracy_study(scan.connection_records())
        series = study.spin_received
        if series.connections < 10:
            pytest.skip("too few spinning connections at this scale")
        assert series.overestimate_share > 0.75
        assert series.over_factor3_share > 0.15
        assert series.within_25pct_share > 0.05

    def test_sorted_series_never_worse_by_much(self, scan):
        study = accuracy_study(scan.connection_records())
        assert study.reordering.changed_share <= 0.1


class TestLongitudinalPipeline:
    def test_compliance_histogram_runs(self, tiny_population):
        runner = CampaignRunner(tiny_population, DEFAULT_CAMPAIGN)
        spin_capable = [
            d for d in tiny_population.domains if d.quic_enabled
        ][:150]
        result = runner.run_longitudinal(4, domains=spin_capable)
        histogram = compliance_histogram(result)
        assert histogram.n_weeks == 4
        if histogram.considered_domains:
            assert sum(histogram.observed_shares) == pytest.approx(1.0)
            # Domains spin at most as often as a compliant endpoint that
            # never churns (the paper's Fig. 2 reading).
            assert (
                histogram.share_spinning_every_week
                <= histogram.rfc9000_shares[-1] + 0.05
            )


class TestIpv6Pipeline:
    def test_v6_scan_produces_support_rows(self, tiny_population):
        dataset = Scanner(tiny_population).scan(week_label="cw20-2023", ip_version=6)
        overview = support_overview(dataset, tiny_population)
        czds = overview.row(ListGroup.CZDS)
        assert czds.domains_resolved < len(tiny_population.group_members(ListGroup.CZDS))
        assert overview.ip_version == 6
