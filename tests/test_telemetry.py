"""The deterministic telemetry plane (``repro.telemetry``)."""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.monitor.pipeline import MonitorConfig, MonitorPipeline
from repro.monitor.traffic import TrafficConfig, TrafficMux
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    read_trace,
    registry_to_prometheus,
    render_summary,
    write_trace_jsonl,
)
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("a.events").inc()
        registry.counter("a.events").inc(4)
        registry.gauge("a.level").set(3.5)
        registry.gauge("a.peak", agg="max").set_max(7.0)
        registry.gauge("a.peak", agg="max").set_max(2.0)
        registry.histogram("a.rtt_ms").observe(25.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a.events"] == 5
        assert snapshot["gauges"]["a.level"] == 3.5
        assert snapshot["gauges"]["a.peak"] == 7.0
        assert snapshot["histograms"]["a.rtt_ms"]["count"] == 1

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("pkts", role="client").inc(2)
        registry.counter("pkts", role="server").inc(5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["pkts{role=client}"] == 2
        assert snapshot["counters"]["pkts{role=server}"] == 5

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_gauge_agg_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("hw", agg="max")
        with pytest.raises(ValueError, match="agg"):
            registry.gauge("hw", agg="sum")

    def test_child_bakes_constant_labels(self):
        registry = MetricsRegistry()
        child = registry.child(shard="3")
        child.counter("done").inc()
        registry.merge(child)
        assert registry.snapshot()["counters"]["done{shard=3}"] == 1

    def test_merge_equals_sequential(self):
        sequential = MetricsRegistry()
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        for index in range(40):
            target = shard_a if index % 2 == 0 else shard_b
            for registry in (sequential, target):
                registry.counter("n").inc()
                registry.gauge("hw", agg="max").set_max(float(index))
                registry.histogram("h").observe(0.3 + index * 7.7)
        merged = MetricsRegistry()
        merged.merge(shard_a)
        merged.merge(shard_b)
        assert merged.snapshot() == sequential.snapshot()
        assert registry_to_prometheus(merged) == registry_to_prometheus(sequential)


class TestTracer:
    def test_event_streams_are_separate(self):
        tracer = Tracer()
        tracer.event("a", time_ms=1.0, k=1)
        tracer.event("b", diag=True, shard=0)
        assert [event.name for event in tracer.events] == ["a"]
        assert [event.name for event in tracer.diag_events] == ["b"]

    def test_span_emits_single_event(self):
        tracer = Tracer()
        with tracer.span("work", time_ms=5.0, unit="x") as span:
            span.annotate(items=3)
            span.end(time_ms=9.0)
        (event,) = tracer.events
        assert event.time_ms == 9.0
        assert event.attrs == {"start_ms": 5.0, "unit": "x", "items": 3}

    def test_jsonl_roundtrip_assigns_steps(self):
        tracer = Tracer()
        tracer.event("x", time_ms=2.0)
        tracer.event("y", time_ms=1.0)  # local clocks may rewind
        out = io.StringIO()
        assert write_trace_jsonl(tracer.events, out) == 2
        loaded = read_trace(io.StringIO(out.getvalue()))
        assert [event["step"] for event in loaded] == [0, 1]
        assert [event["name"] for event in loaded] == ["x", "y"]


class TestExport:
    def test_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("scan.domains").inc(3)
        registry.gauge("netsim.queue_high_water", agg="max").set_max(9.0)
        registry.histogram("rtt-ms").observe(10.0)
        text = registry_to_prometheus(registry)
        assert "# TYPE repro_scan_domains_total counter" in text
        assert "repro_scan_domains_total 3" in text
        assert "repro_netsim_queue_high_water 9.0" in text
        assert '# TYPE repro_rtt_ms summary' in text
        assert 'repro_rtt_ms{quantile="0.5"}' in text
        assert "repro_rtt_ms_count 1" in text
        assert text.endswith("\n")

    def test_render_summary_mentions_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(5.0)
        text = render_summary(
            registry.snapshot(), [{"name": "e"}, {"name": "e"}]
        )
        assert "trace: 2 events" in text
        assert "e x2" in text
        assert "c" in text and "2" in text
        assert "count=1" in text
        assert render_summary({}) == "(no telemetry recorded)"

    def test_save_writes_the_directory(self, tmp_path):
        telemetry = Telemetry()
        telemetry.registry.counter("n").inc()
        telemetry.tracer.event("e", time_ms=1.0)
        telemetry.tracer.event("d", diag=True)
        paths = telemetry.save(tmp_path / "tele")
        for key in ("trace", "diag", "snapshot", "prom"):
            assert paths[key].is_file()
        snapshot = json.loads(paths["snapshot"].read_text())
        assert snapshot["counters"]["n"] == 1
        assert "telemetry" not in telemetry.summary_text()  # renders content


class TestScanTelemetry:
    @pytest.fixture(scope="class")
    def targets(self, tiny_population):
        return tiny_population.domains[:60]

    def _scan(self, population, targets, workers, out_dir):
        telemetry = Telemetry()
        scanner = Scanner(
            population,
            ScanConfig(),
            parallel=ParallelScanConfig(workers=workers),
            telemetry=telemetry,
        )
        scanner.scan(week_label="cw20-2023", ip_version=4, domains=targets)
        return telemetry.save(out_dir)

    def test_trace_and_metrics_identical_across_worker_counts(
        self, tiny_population, targets, tmp_path
    ):
        """The issue's acceptance criterion: equal seeds, any sharding,
        byte-identical deterministic artifacts."""
        seq = self._scan(tiny_population, targets, 1, tmp_path / "w1")
        par = self._scan(tiny_population, targets, 4, tmp_path / "w4")
        assert seq["trace"].read_bytes() == par["trace"].read_bytes()
        assert seq["prom"].read_bytes() == par["prom"].read_bytes()
        assert seq["snapshot"].read_bytes() == par["snapshot"].read_bytes()

    def test_counters_match_dataset(self, tiny_population, targets):
        telemetry = Telemetry()
        scanner = Scanner(tiny_population, ScanConfig(), telemetry=telemetry)
        dataset = scanner.scan(
            week_label="cw20-2023", ip_version=4, domains=targets
        )
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["scan.domains"] == len(targets)
        assert counters["scan.connections"] == len(dataset.connection_records())
        assert counters["scan.domains_resolved"] == sum(
            1 for result in dataset.results if result.resolved
        )
        assert counters["scan.domains_quic"] == sum(
            1 for result in dataset.results if result.quic_support
        )
        successes = sum(
            1 for record in dataset.connection_records() if record.success
        )
        assert counters.get("scan.handshakes{outcome=success}", 0) == successes
        # One deterministic trace event per domain plus scan.begin.
        domain_events = [
            event
            for event in telemetry.tracer.events
            if event.name == "scan.domain"
        ]
        assert len(domain_events) == len(targets)
        assert telemetry.tracer.events[0].name == "scan.begin"
        assert "workers" not in telemetry.tracer.events[0].attrs

    def test_telemetry_off_costs_nothing_semantically(
        self, tiny_population, targets
    ):
        bare = Scanner(tiny_population, ScanConfig()).scan(
            week_label="cw20-2023", ip_version=4, domains=targets
        )
        instrumented = Scanner(
            tiny_population, ScanConfig(), telemetry=Telemetry()
        ).scan(week_label="cw20-2023", ip_version=4, domains=targets)
        assert bare == instrumented


class TestMonitorTelemetry:
    def test_pipeline_reports_into_registry(self):
        telemetry = Telemetry()
        traffic = TrafficConfig(flows=25, seed=5)
        pipeline = MonitorPipeline(MonitorConfig(), telemetry=telemetry)
        mux = TrafficMux(traffic, metrics=telemetry.registry)
        summary = pipeline.process_stream(mux.stream())

        snapshot = telemetry.registry.snapshot()
        counters = snapshot["counters"]
        assert counters["flow_table.datagrams"] == summary.datagrams
        assert counters["flow_table.flows_created"] == summary.flows_created
        assert counters["monitor.windows_closed"] == summary.windows
        assert counters["monitor.spin_flows"] == summary.spin_flows
        assert counters["netsim.events_dispatched"] > 0
        assert snapshot["gauges"]["flow_table.peak_flows"] == summary.peak_flows
        assert (
            snapshot["histograms"]["monitor.rtt_ms"]["count"]
            == summary.samples.get("count", 0)
        )

        window_events = [
            event
            for event in telemetry.tracer.events
            if event.name == "monitor.window"
        ]
        assert len(window_events) == summary.windows
        assert telemetry.tracer.events[-1].name == "monitor.summary"

    def test_custom_window_binning_folds_in(self):
        from repro.monitor.aggregate import WindowConfig

        telemetry = Telemetry()
        config = MonitorConfig(
            window=WindowConfig(hist_min_ms=1.0, hist_bins_per_decade=8)
        )
        pipeline = MonitorPipeline(config, telemetry=telemetry)
        mux = TrafficMux(TrafficConfig(flows=10, seed=5), metrics=telemetry.registry)
        summary = pipeline.process_stream(mux.stream())
        hist = telemetry.registry.snapshot()["histograms"]["monitor.rtt_ms"]
        assert hist["count"] == summary.samples.get("count", 0)


class TestDeterminismLint:
    LINT = REPO_ROOT / "scripts" / "check_determinism_lint.py"

    def test_src_tree_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(self.LINT), str(REPO_ROOT / "src")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_wall_clock_reads_are_caught(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\nstart = time.time()\n", encoding="utf-8"
        )
        result = subprocess.run(
            [sys.executable, str(self.LINT), str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "bad.py:2" in result.stderr

    def test_pragma_escapes_the_lint(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "import time\n"
            "start = time.perf_counter()  # wallclock-ok: diagnostics\n",
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, str(self.LINT), str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0

    def test_json_in_record_loop_is_caught(self, tmp_path):
        analysis = tmp_path / "repro" / "analysis"
        analysis.mkdir(parents=True)
        bad = analysis / "hot.py"
        bad.write_text(
            "import json\n"
            "def f(lines):\n"
            "    out = json.dumps({})\n"  # outside a loop: fine
            "    for line in lines:\n"
            "        data = json.loads(line)\n"
            "    return out\n",
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, str(self.LINT), str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "hot.py:5" in result.stderr
        assert "hot.py:3" not in result.stderr

    def test_jsonl_pragma_escapes_the_loop_rule(self, tmp_path):
        analysis = tmp_path / "repro" / "analysis"
        analysis.mkdir(parents=True)
        ok = analysis / "codec.py"
        ok.write_text(
            "import json\n"
            "def read(lines):\n"
            "    for line in lines:\n"
            "        yield json.loads(line)  # jsonl-ok: the JSONL codec\n",
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, str(self.LINT), str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
