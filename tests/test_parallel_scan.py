"""Determinism of the sharded scan engine.

The parallel engine's whole correctness argument is that per-domain
randomness is independently derived from ``(population seed, week,
ip_version, domain, probe)``; these tests pin the two consequences the
engine relies on: any subset scan equals the corresponding slice of a
full scan, and any sharding (workers x chunk size) merges bit-identical
to the sequential path, including sampled qlog documents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.rng import SeedPrefix, derive_rng
from repro.internet.population import PopulationConfig, build_population
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner


@pytest.fixture(scope="module")
def population():
    return build_population(
        PopulationConfig(toplist_domains=60, czds_domains=240, seed=11)
    )


@pytest.fixture(scope="module")
def sequential_dataset(population):
    return Scanner(population, ScanConfig(qlog_sample_rate=0.2)).scan(
        week_label="cw20-2023", ip_version=4
    )


class TestSeedPrefix:
    def test_matches_derive_rng_streams(self):
        prefix = SeedPrefix(20230520, "scan", "cw20-2023", 4)
        for name, probe in (("example.com", 0), ("other.net", 3), ("x.org", 16)):
            a = prefix.derive(name, probe)
            b = derive_rng(20230520, "scan", "cw20-2023", 4, name, probe)
            assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_empty_suffix(self):
        assert (
            SeedPrefix(7, "a", "b").derive().random()
            == derive_rng(7, "a", "b").random()
        )


class TestSubsetSliceProperty:
    @settings(max_examples=8, deadline=None)
    @given(start=st.integers(0, 299), length=st.integers(1, 40))
    def test_subset_scan_equals_full_scan_slice(
        self, population, sequential_dataset, start, length
    ):
        subset = population.domains[start : start + length]
        if not subset:
            return
        partial = Scanner(population, ScanConfig(qlog_sample_rate=0.2)).scan(
            week_label="cw20-2023", ip_version=4, domains=subset
        )
        assert partial.results == sequential_dataset.results[start : start + length]


class TestParallelMerge:
    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("chunk_size", (1, 7, None))
    def test_parallel_equals_sequential(
        self, population, sequential_dataset, workers, chunk_size
    ):
        parallel = Scanner(
            population,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(workers=workers, chunk_size=chunk_size),
        ).scan(week_label="cw20-2023", ip_version=4)
        assert parallel == sequential_dataset

    def test_sampled_qlogs_identical(self, population, sequential_dataset):
        parallel = Scanner(
            population,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(workers=2, chunk_size=13),
        ).scan(week_label="cw20-2023", ip_version=4)
        seq_qlogs = [c.qlog for c in sequential_dataset.connection_records()]
        par_qlogs = [c.qlog for c in parallel.connection_records()]
        assert sum(1 for q in seq_qlogs if q is not None) > 0
        assert seq_qlogs == par_qlogs

    def test_probe_and_ipv6_shards(self, population):
        scanner_seq = Scanner(population)
        scanner_par = Scanner(
            population, parallel=ParallelScanConfig(workers=2, chunk_size=9)
        )
        domains = [d for d in population.domains if d.quic_enabled][:30]
        assert scanner_par.scan(
            week_label="cw19-2023", domains=domains, probe=5
        ) == scanner_seq.scan(week_label="cw19-2023", domains=domains, probe=5)
        assert scanner_par.scan(ip_version=6) == scanner_seq.scan(ip_version=6)


class TestPoolFallback:
    def test_one_core_falls_back_inline(self, population, monkeypatch):
        """With one usable core a pool cannot win; stay in-process."""
        import repro.web.parallel as parallel_mod

        def explode(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("pool built despite single-core fallback")

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", explode)
        dataset = Scanner(
            population, parallel=ParallelScanConfig(workers=4, chunk_size=7)
        ).scan(week_label="cw20-2023", domains=population.domains[:20])
        assert len(dataset.results) == 20

    def test_single_shard_falls_back_inline(self, population, monkeypatch):
        import repro.web.parallel as parallel_mod

        def explode(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("pool built for a single shard")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", explode)
        dataset = Scanner(
            population, parallel=ParallelScanConfig(workers=4, chunk_size=64)
        ).scan(week_label="cw20-2023", domains=population.domains[:20])
        assert len(dataset.results) == 20

    def test_force_pool_uses_real_pool(self, population, sequential_dataset):
        """force_pool exercises the process pool even on one core, and
        the merged dataset is still bit-identical."""
        scanner = Scanner(
            population,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(workers=2, chunk_size=50, force_pool=True),
        )
        first = scanner.scan(week_label="cw20-2023", ip_version=4)
        assert first == sequential_dataset
        # The pool persists on the scanner and serves the next scan too.
        assert scanner._shard_pool is not None
        pool = scanner._shard_pool[1]
        second = scanner.scan(week_label="cw20-2023", ip_version=4)
        assert second == sequential_dataset
        assert scanner._shard_pool[1] is pool


class TestSingleWorkerFallback:
    def test_no_pool_for_one_worker(self, population, monkeypatch):
        """workers=1 must stay in-process: no executor, no pickling."""
        import repro.web.parallel as parallel_mod

        def explode(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("ProcessPoolExecutor used for workers=1")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", explode)
        dataset = Scanner(population).scan(
            week_label="cw20-2023", domains=population.domains[:10]
        )
        assert len(dataset.results) == 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelScanConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelScanConfig(workers=2, chunk_size=0)
        assert ParallelScanConfig.auto().workers >= 1

    def test_chunk_size_resolution(self):
        config = ParallelScanConfig(workers=4)
        assert config.resolve_chunk_size(16) == 1
        assert config.resolve_chunk_size(1600) == 100
        assert config.resolve_chunk_size(1_000_000) == 512
        assert ParallelScanConfig(workers=4, chunk_size=37).resolve_chunk_size(9) == 37


class TestVerboseSummary:
    def test_one_line_summary(self, population, capsys):
        Scanner(population).scan(
            week_label="cw20-2023", domains=population.domains[:5], verbose=True
        )
        err = capsys.readouterr().err
        assert "scanned 5 domains" in err
        assert "domains/s" in err
        assert "1 worker(s)" in err


class TestShardPlan:
    """The planner's invariants: count, coverage, purity, splitting."""

    def test_plan_always_ceil_shards(self):
        from repro.web.shardplan import plan_shards

        for n, chunk in ((1, 64), (20, 64), (300, 64), (300, 7), (128, 128)):
            expected = -(-n // chunk)
            costs = [1.0 + (i % 9) for i in range(n)]
            assert len(plan_shards(n, chunk)) == expected
            assert len(plan_shards(n, chunk, costs.__getitem__)) == expected
            assert len(plan_shards(n, chunk, costs.__getitem__, fixed=True)) == expected
        assert plan_shards(0, 64) == []

    def test_plan_covers_targets_contiguously(self):
        from repro.web.shardplan import plan_shards

        costs = [10.0 if i % 11 == 0 else 0.1 for i in range(257)]
        shards = plan_shards(257, 32, costs.__getitem__)
        position = 0
        for index, shard in enumerate(shards):
            assert shard.index == index
            assert shard.start == position
            assert shard.count >= 1
            position = shard.stop
        assert position == 257

    def test_cost_aware_boundaries_balance_cost(self):
        from repro.web.shardplan import plan_shards

        # All the expensive domains sit at the front: a fixed plan puts
        # them in one shard, the cost plan spreads the boundary.
        costs = [100.0] * 10 + [0.1] * 90
        balanced = plan_shards(100, 25, costs.__getitem__)
        fixed = plan_shards(100, 25, costs.__getitem__, fixed=True)
        assert max(s.cost for s in balanced) < max(s.cost for s in fixed)
        assert fixed[0].count == 25
        assert balanced[0].count < 25

    def test_plan_is_pure(self):
        from repro.web.shardplan import plan_shards

        costs = [float((i * 37) % 13 + 1) for i in range(301)]
        assert plan_shards(301, 40, costs.__getitem__) == plan_shards(
            301, 40, costs.__getitem__
        )

    def test_split_shares_index_and_covers_range(self):
        from repro.web.shardplan import ShardRange, split_shard

        costs = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        shard = ShardRange(index=3, start=0, count=6, cost=10.0)
        left, right = split_shard(shard, costs)
        assert left.index == right.index == 3
        assert left.start == 0
        assert right.stop == 6
        assert left.count + right.count == 6
        assert left.count >= 1 and right.count >= 1
        # Cost midpoint: the expensive first domain pulls the cut left.
        assert left.count < 6 // 2 + 1

    def test_split_refuses_single_domain(self):
        from repro.web.shardplan import ShardRange, split_shard

        assert split_shard(ShardRange(index=0, start=4, count=1, cost=1.0)) is None

    def test_cost_model_prices_fault_draws(self, population):
        from repro.faults import parse_fault_plan
        from repro.web.shardplan import ShardCostModel

        plan = parse_fault_plan("blackhole:0.2")
        model = ShardCostModel(
            population,
            ScanConfig(faults=plan),
            "cw20-2023",
            4,
            0,
        )
        plain = ShardCostModel(population, ScanConfig(), "cw20-2023", 4, 0)
        quic = [d for d in population.domains if d.quic_enabled]
        faulted_total = sum(model.domain_cost(d) for d in quic)
        plain_total = sum(plain.domain_cost(d) for d in quic)
        assert faulted_total > plain_total
        # Unresolved domains never pay a fault surcharge.
        dead = next(d for d in population.domains if not d.resolves)
        assert model.domain_cost(dead) == plain.domain_cost(dead)


class TestWorkStealingIdentity:
    """Property-style sweep: (workers, chunk, fault plan) x force_pool.

    force_pool=True routes through the real submit/FIRST_COMPLETED
    scheduler (with tail splitting) even on a single-core host; every
    combination must merge record-by-record identical to sequential.
    """

    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("chunk_size", (7, None))
    def test_pool_merge_identity(
        self, population, sequential_dataset, workers, chunk_size
    ):
        scanner = Scanner(
            population,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(
                workers=workers, chunk_size=chunk_size, force_pool=True
            ),
        )
        try:
            dataset = scanner.scan(week_label="cw20-2023", ip_version=4)
        finally:
            scanner.close()
        for got, want in zip(dataset.results, sequential_dataset.results):
            assert got == want
        assert dataset == sequential_dataset

    @pytest.mark.parametrize("workers,chunk_size", ((2, 13), (4, None)))
    def test_pool_merge_identity_with_faults(self, population, workers, chunk_size):
        from repro.faults import ResilienceConfig, RetryPolicy, parse_fault_plan

        config = ScanConfig(
            faults=parse_fault_plan("blackhole:0.05,reset:0.08,slow-server:0.1"),
            resilience=ResilienceConfig(
                connect_timeout_ms=15_000, retry=RetryPolicy(max_attempts=2)
            ),
        )
        sequential = Scanner(population, config).scan(
            week_label="cw21-2023", ip_version=4
        )
        scanner = Scanner(
            population,
            config,
            parallel=ParallelScanConfig(
                workers=workers, chunk_size=chunk_size, force_pool=True
            ),
        )
        try:
            pooled = scanner.scan(week_label="cw21-2023", ip_version=4)
        finally:
            scanner.close()
        assert pooled == sequential

    def test_scheduler_records_stats(self, population):
        scanner = Scanner(
            population,
            parallel=ParallelScanConfig(workers=4, chunk_size=100, force_pool=True),
        )
        try:
            scanner.scan(week_label="cw20-2023", ip_version=4)
        finally:
            scanner.close()
        stats = scanner.last_scan_stats
        assert stats["workers"] == 4
        # 300 domains / chunk 100 = 3 planned shards for 4 workers: the
        # tail must have been split at least once.
        assert stats["splits"] >= 1
        assert stats["units"] >= 4


class TestPoolLifecycle:
    """Explicit close(), context manager, deterministic shape change."""

    def test_close_shuts_pool_down(self, population):
        scanner = Scanner(
            population,
            parallel=ParallelScanConfig(workers=2, chunk_size=64, force_pool=True),
        )
        scanner.scan(week_label="cw20-2023", domains=population.domains[:40])
        assert scanner._shard_pool is not None
        pool = scanner._shard_pool[1]
        scanner.close()
        assert scanner._shard_pool is None
        with pytest.raises(RuntimeError):
            pool.submit(int)
        # Idempotent, and the scanner stays usable afterwards.
        scanner.close()
        dataset = scanner.scan(
            week_label="cw20-2023", domains=population.domains[:40]
        )
        assert len(dataset.results) == 40
        scanner.close()

    def test_context_manager_closes(self, population):
        with Scanner(
            population,
            parallel=ParallelScanConfig(workers=2, chunk_size=64, force_pool=True),
        ) as scanner:
            scanner.scan(week_label="cw20-2023", domains=population.domains[:40])
            assert scanner._shard_pool is not None
        assert scanner._shard_pool is None

    def test_shape_change_shuts_old_pool_down(self, population):
        scanner = Scanner(
            population,
            parallel=ParallelScanConfig(workers=2, chunk_size=64, force_pool=True),
        )
        try:
            scanner.scan(week_label="cw20-2023", domains=population.domains[:40])
            old_pool = scanner._shard_pool[1]
            scanner.parallel = ParallelScanConfig(
                workers=3, chunk_size=64, force_pool=True
            )
            scanner.scan(week_label="cw20-2023", domains=population.domains[:40])
            assert scanner._shard_pool[1] is not old_pool
            with pytest.raises(RuntimeError):
                old_pool.submit(int)
        finally:
            scanner.close()

    def test_campaign_runner_close(self, population):
        from repro.campaign.runner import CampaignRunner
        from repro.campaign.schedule import DEFAULT_CAMPAIGN

        with CampaignRunner(
            population,
            DEFAULT_CAMPAIGN,
            parallel=ParallelScanConfig(workers=2, chunk_size=64, force_pool=True),
        ) as runner:
            week = DEFAULT_CAMPAIGN.weeks()[0]
            runner.run_week(week)
            assert runner.scanner._shard_pool is not None
        assert runner.scanner._shard_pool is None
