"""Determinism of the sharded scan engine.

The parallel engine's whole correctness argument is that per-domain
randomness is independently derived from ``(population seed, week,
ip_version, domain, probe)``; these tests pin the two consequences the
engine relies on: any subset scan equals the corresponding slice of a
full scan, and any sharding (workers x chunk size) merges bit-identical
to the sequential path, including sampled qlog documents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.rng import SeedPrefix, derive_rng
from repro.internet.population import PopulationConfig, build_population
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner


@pytest.fixture(scope="module")
def population():
    return build_population(
        PopulationConfig(toplist_domains=60, czds_domains=240, seed=11)
    )


@pytest.fixture(scope="module")
def sequential_dataset(population):
    return Scanner(population, ScanConfig(qlog_sample_rate=0.2)).scan(
        week_label="cw20-2023", ip_version=4
    )


class TestSeedPrefix:
    def test_matches_derive_rng_streams(self):
        prefix = SeedPrefix(20230520, "scan", "cw20-2023", 4)
        for name, probe in (("example.com", 0), ("other.net", 3), ("x.org", 16)):
            a = prefix.derive(name, probe)
            b = derive_rng(20230520, "scan", "cw20-2023", 4, name, probe)
            assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_empty_suffix(self):
        assert (
            SeedPrefix(7, "a", "b").derive().random()
            == derive_rng(7, "a", "b").random()
        )


class TestSubsetSliceProperty:
    @settings(max_examples=8, deadline=None)
    @given(start=st.integers(0, 299), length=st.integers(1, 40))
    def test_subset_scan_equals_full_scan_slice(
        self, population, sequential_dataset, start, length
    ):
        subset = population.domains[start : start + length]
        if not subset:
            return
        partial = Scanner(population, ScanConfig(qlog_sample_rate=0.2)).scan(
            week_label="cw20-2023", ip_version=4, domains=subset
        )
        assert partial.results == sequential_dataset.results[start : start + length]


class TestParallelMerge:
    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("chunk_size", (1, 7, None))
    def test_parallel_equals_sequential(
        self, population, sequential_dataset, workers, chunk_size
    ):
        parallel = Scanner(
            population,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(workers=workers, chunk_size=chunk_size),
        ).scan(week_label="cw20-2023", ip_version=4)
        assert parallel == sequential_dataset

    def test_sampled_qlogs_identical(self, population, sequential_dataset):
        parallel = Scanner(
            population,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(workers=2, chunk_size=13),
        ).scan(week_label="cw20-2023", ip_version=4)
        seq_qlogs = [c.qlog for c in sequential_dataset.connection_records()]
        par_qlogs = [c.qlog for c in parallel.connection_records()]
        assert sum(1 for q in seq_qlogs if q is not None) > 0
        assert seq_qlogs == par_qlogs

    def test_probe_and_ipv6_shards(self, population):
        scanner_seq = Scanner(population)
        scanner_par = Scanner(
            population, parallel=ParallelScanConfig(workers=2, chunk_size=9)
        )
        domains = [d for d in population.domains if d.quic_enabled][:30]
        assert scanner_par.scan(
            week_label="cw19-2023", domains=domains, probe=5
        ) == scanner_seq.scan(week_label="cw19-2023", domains=domains, probe=5)
        assert scanner_par.scan(ip_version=6) == scanner_seq.scan(ip_version=6)


class TestPoolFallback:
    def test_one_core_falls_back_inline(self, population, monkeypatch):
        """With one usable core a pool cannot win; stay in-process."""
        import repro.web.parallel as parallel_mod

        def explode(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("pool built despite single-core fallback")

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", explode)
        dataset = Scanner(
            population, parallel=ParallelScanConfig(workers=4, chunk_size=7)
        ).scan(week_label="cw20-2023", domains=population.domains[:20])
        assert len(dataset.results) == 20

    def test_single_shard_falls_back_inline(self, population, monkeypatch):
        import repro.web.parallel as parallel_mod

        def explode(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("pool built for a single shard")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", explode)
        dataset = Scanner(
            population, parallel=ParallelScanConfig(workers=4, chunk_size=64)
        ).scan(week_label="cw20-2023", domains=population.domains[:20])
        assert len(dataset.results) == 20

    def test_force_pool_uses_real_pool(self, population, sequential_dataset):
        """force_pool exercises the process pool even on one core, and
        the merged dataset is still bit-identical."""
        scanner = Scanner(
            population,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(workers=2, chunk_size=50, force_pool=True),
        )
        first = scanner.scan(week_label="cw20-2023", ip_version=4)
        assert first == sequential_dataset
        # The pool persists on the scanner and serves the next scan too.
        assert scanner._shard_pool is not None
        pool = scanner._shard_pool[1]
        second = scanner.scan(week_label="cw20-2023", ip_version=4)
        assert second == sequential_dataset
        assert scanner._shard_pool[1] is pool


class TestSingleWorkerFallback:
    def test_no_pool_for_one_worker(self, population, monkeypatch):
        """workers=1 must stay in-process: no executor, no pickling."""
        import repro.web.parallel as parallel_mod

        def explode(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("ProcessPoolExecutor used for workers=1")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", explode)
        dataset = Scanner(population).scan(
            week_label="cw20-2023", domains=population.domains[:10]
        )
        assert len(dataset.results) == 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelScanConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelScanConfig(workers=2, chunk_size=0)
        assert ParallelScanConfig.auto().workers >= 1

    def test_chunk_size_resolution(self):
        config = ParallelScanConfig(workers=4)
        assert config.resolve_chunk_size(16) == 1
        assert config.resolve_chunk_size(1600) == 100
        assert config.resolve_chunk_size(1_000_000) == 512
        assert ParallelScanConfig(workers=4, chunk_size=37).resolve_chunk_size(9) == 37


class TestVerboseSummary:
    def test_one_line_summary(self, population, capsys):
        Scanner(population).scan(
            week_label="cw20-2023", domains=population.domains[:5], verbose=True
        )
        err = capsys.readouterr().err
        assert "scanned 5 domains" in err
        assert "domains/s" in err
        assert "1 worker(s)" in err
