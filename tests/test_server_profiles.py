"""Webserver stack catalog invariants and plan sampling."""

import pytest

from repro._util.rng import derive_rng
from repro.core.spin import SpinPolicy
from repro.web.server_profiles import STACKS, ServerStackProfile, stack_by_name


class TestCatalog:
    def test_expected_stacks_present(self):
        for name in (
            "litespeed",
            "imunify360",
            "cloudflare",
            "gws",
            "fastly",
            "nginx",
            "caddy-spin",
            "allone-appliance",
            "grease-packet",
            "grease-connection",
        ):
            assert name in STACKS

    def test_hyperscalers_do_not_spin(self):
        """The paper's headline finding: Cloudflare, Google's default
        stack, and Fastly leave the spin bit at zero."""
        for name in ("cloudflare", "gws", "fastly", "nginx"):
            assert not STACKS[name].spin_config.ever_spins
            assert STACKS[name].spin_config.base_policy is SpinPolicy.ALWAYS_ZERO

    def test_litespeed_spins_with_rfc_disable(self):
        config = STACKS["litespeed"].spin_config
        assert config.ever_spins
        assert config.disable_one_in_n == 16

    def test_allone_stack(self):
        assert STACKS["allone-appliance"].spin_config.base_policy is SpinPolicy.ALWAYS_ONE

    def test_grease_stacks(self):
        assert (
            STACKS["grease-packet"].spin_config.base_policy
            is SpinPolicy.GREASE_PER_PACKET
        )
        assert (
            STACKS["grease-connection"].spin_config.base_policy
            is SpinPolicy.GREASE_PER_CONNECTION
        )

    def test_lookup_error_lists_known(self):
        with pytest.raises(KeyError, match="litespeed"):
            stack_by_name("apache")


class TestPlanSampling:
    def test_deterministic_per_rng(self):
        stack = STACKS["litespeed"]
        a = stack.sample_plan(derive_rng(4, "p"), None)
        b = stack.sample_plan(derive_rng(4, "p"), None)
        assert a == b

    def test_page_size_bounds_respected(self):
        stack = STACKS["litespeed"]
        for seed in range(60):
            plan = stack.sample_plan(derive_rng(seed, "bounds"), None)
            total = sum(plan.write_sizes)
            assert stack.min_page_bytes <= total <= stack.max_page_bytes

    def test_redirects_only_with_target(self):
        stack = STACKS["cloudflare"]  # 8 % redirect probability
        saw_redirect = False
        for seed in range(200):
            plan = stack.sample_plan(derive_rng(seed, "r"), "https://t/")
            saw_redirect = saw_redirect or plan.is_redirect
            assert not stack.sample_plan(derive_rng(seed, "r"), None).is_redirect
        assert saw_redirect

    def test_dynamic_plans_have_gaps(self):
        stack = STACKS["imunify360"]  # high dynamic fraction
        gapped = 0
        for seed in range(80):
            plan = stack.sample_plan(derive_rng(seed, "d"), None)
            if len(plan.write_sizes) > 1:
                gapped += 1
                assert len(plan.write_gaps_ms) == len(plan.write_sizes)
                assert plan.write_gaps_ms[0] == 0.0
                assert sum(plan.write_sizes) >= stack.min_page_bytes
        assert gapped > 20

    def test_static_stacks_write_once(self):
        stack = STACKS["cloudflare"]
        for seed in range(30):
            plan = stack.sample_plan(derive_rng(seed, "s"), None)
            assert len(plan.write_sizes) == 1

    def test_server_header_carried(self):
        plan = STACKS["imunify360"].sample_plan(derive_rng(1, "h"), None)
        assert plan.server_header.startswith("imunify360")


class TestProfileValidation:
    def test_dynamic_fraction_bounds(self):
        from repro.core.spin import SpinDeploymentConfig

        with pytest.raises(ValueError):
            ServerStackProfile(
                name="x",
                server_header="x",
                spin_config=SpinDeploymentConfig(SpinPolicy.ALWAYS_ZERO),
                dynamic_fraction=1.5,
            )

    def test_page_bounds_validated(self):
        from repro.core.spin import SpinDeploymentConfig

        with pytest.raises(ValueError):
            ServerStackProfile(
                name="x",
                server_header="x",
                spin_config=SpinDeploymentConfig(SpinPolicy.ALWAYS_ZERO),
                min_page_bytes=100,
                max_page_bytes=50,
            )
