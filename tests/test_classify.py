"""Spin-behaviour classification (Table 3 semantics)."""

from conftest import make_observation
from repro.core.classify import SpinBehaviour, classify_connection, classify_domain


class TestConnectionClassification:
    def test_all_zero(self):
        obs = make_observation([(0.0, 0, False), (10.0, 1, False)])
        assert classify_connection(obs, [30.0]) is SpinBehaviour.ALL_ZERO

    def test_all_one(self):
        obs = make_observation([(0.0, 0, True), (10.0, 1, True)])
        assert classify_connection(obs, [30.0]) is SpinBehaviour.ALL_ONE

    def test_spin(self):
        obs = make_observation(
            [(0.0, 0, False), (40.0, 1, True), (80.0, 2, False), (120.0, 3, True)]
        )
        assert classify_connection(obs, [38.0]) is SpinBehaviour.SPIN

    def test_grease_when_samples_undercut_stack(self):
        obs = make_observation(
            [(0.0, 0, False), (2.0, 1, True), (4.0, 2, False), (6.0, 3, True)]
        )
        assert classify_connection(obs, [38.0]) is SpinBehaviour.GREASE

    def test_no_packets(self):
        obs = make_observation([])
        assert classify_connection(obs, []) is SpinBehaviour.NO_PACKETS

    def test_activity_flag(self):
        assert SpinBehaviour.SPIN.shows_activity
        assert SpinBehaviour.GREASE.shows_activity
        assert not SpinBehaviour.ALL_ZERO.shows_activity


class TestDomainClassification:
    def test_any_spin_connection_makes_domain_spin(self):
        behaviours = [SpinBehaviour.ALL_ZERO, SpinBehaviour.SPIN]
        assert classify_domain(behaviours) is SpinBehaviour.SPIN

    def test_all_filtered_makes_domain_grease(self):
        behaviours = [SpinBehaviour.GREASE, SpinBehaviour.ALL_ZERO]
        assert classify_domain(behaviours) is SpinBehaviour.GREASE

    def test_uniform_constants(self):
        assert classify_domain([SpinBehaviour.ALL_ZERO] * 3) is SpinBehaviour.ALL_ZERO
        assert classify_domain([SpinBehaviour.ALL_ONE] * 2) is SpinBehaviour.ALL_ONE

    def test_mixed_constants_marked_grease(self):
        """Different fixed values across connections is per-connection
        greasing in disguise."""
        behaviours = [SpinBehaviour.ALL_ZERO, SpinBehaviour.ALL_ONE]
        assert classify_domain(behaviours) is SpinBehaviour.GREASE

    def test_no_usable_connections(self):
        assert classify_domain([]) is SpinBehaviour.NO_PACKETS
        assert classify_domain([SpinBehaviour.NO_PACKETS]) is SpinBehaviour.NO_PACKETS
