"""The passive spin-bit observer: edges, RTT samples, R vs S ordering."""

from hypothesis import given
from hypothesis import strategies as st

from conftest import make_observation
from repro.core.observer import SpinObserver, observe_recorder, spin_rtts_from_edges
from repro.qlog.recorder import TraceRecorder


class TestEdgeDetection:
    def test_steady_signal_has_no_edges(self):
        obs = make_observation([(0.0, 0, False), (10.0, 1, False), (20.0, 2, False)])
        assert obs.edges_received == []
        assert obs.rtts_received_ms == []
        assert obs.all_zero

    def test_single_flip_yields_one_edge_no_sample(self):
        obs = make_observation([(0.0, 0, False), (50.0, 1, True)])
        assert len(obs.edges_received) == 1
        assert obs.rtts_received_ms == []
        assert obs.spins

    def test_two_flips_yield_one_rtt(self):
        obs = make_observation(
            [(0.0, 0, False), (50.0, 1, True), (100.0, 2, False)]
        )
        assert obs.rtts_received_ms == [50.0]

    def test_square_wave_rtts(self):
        packets = [(i * 30.0, i, i % 2 == 1) for i in range(8)]
        obs = make_observation(packets)
        assert all(abs(r - 30.0) < 1e-9 for r in obs.rtts_received_ms)
        assert len(obs.rtts_received_ms) == 6


class TestValueTracking:
    def test_all_one(self):
        obs = make_observation([(0.0, 0, True), (1.0, 1, True)])
        assert obs.all_one and not obs.spins

    def test_empty_observation(self):
        obs = make_observation([])
        assert obs.packets_seen == 0
        assert not obs.spins and not obs.all_zero and not obs.all_one


class TestReceivedVsSorted:
    def test_reordering_creates_spurious_edges_in_r_only(self):
        """Fig 1b: a straggler with a lower pn lands inside the opposite
        phase, fabricating two edges in received order; sorting by
        packet number removes them."""
        packets = [
            (0.0, 0, False),
            (30.0, 1, False),
            (60.0, 3, True),   # genuine edge (pn 2 still in flight)
            (61.0, 2, False),  # straggler: spurious flip in R
            (62.0, 4, True),
            (90.0, 5, False),  # genuine edge back
        ]
        obs = make_observation(packets)
        assert obs.reordering_changed_result()
        # R saw extra ultra-short cycles.
        assert min(obs.rtts_received_ms) < min(obs.rtts_sorted_ms)
        assert len(obs.edges_received) > len(obs.edges_sorted)

    def test_in_order_streams_identical(self):
        packets = [(float(i) * 10.0, i, (i // 3) % 2 == 1) for i in range(12)]
        obs = make_observation(packets)
        assert not obs.reordering_changed_result()

    def test_sorted_uses_arrival_timestamps(self):
        """Sorting reorders the comparison sequence but keeps each
        packet's own arrival time for the interval computation."""
        packets = [
            (0.0, 0, False),
            (100.0, 2, True),
            (101.0, 1, False),
        ]
        obs = make_observation(packets)
        # Sorted order: pn0(t0,F), pn1(t101,F), pn2(t100,T): one edge at
        # t=100, no sample.
        assert len(obs.edges_sorted) == 1
        assert obs.edges_sorted[0].time_ms == 100.0


class TestRecorderIntegration:
    def test_only_short_header_packets_observed(self):
        recorder = TraceRecorder()
        recorder.on_packet_received(0.0, "initial", 0, None, 1200)
        recorder.on_packet_received(10.0, "1RTT", 0, False, 100)
        recorder.on_packet_received(20.0, "1RTT", 1, True, 100)
        obs = observe_recorder(recorder)
        assert obs.packets_seen == 2
        assert obs.spins


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4),
            st.integers(min_value=0, max_value=500),
            st.booleans(),
        ),
        max_size=60,
    )
)
def test_observer_invariants_property(raw):
    """Edges equal value changes; samples are one fewer than edges (or
    zero); sample count never exceeds packet count."""
    packets = sorted(raw, key=lambda p: p[0])  # arrival times ordered
    observer = SpinObserver()
    for time_ms, pn, spin in packets:
        observer.on_packet(time_ms, pn, spin)
    obs = observer.observation()

    changes = sum(
        1 for a, b in zip(packets, packets[1:]) if a[2] != b[2]
    )
    assert len(obs.edges_received) == changes
    assert len(obs.rtts_received_ms) == max(0, changes - 1)
    assert all(r >= 0 for r in obs.rtts_received_ms)
    assert spin_rtts_from_edges(obs.edges_received) == obs.rtts_received_ms
    assert len(obs.rtts_sorted_ms) <= max(0, len(packets) - 2) if packets else True
