"""The HTTP/3-style application layer: plans, parsing, redirects."""

import pytest

from repro._util.rng import derive_rng
from repro.core.spin import SpinPolicy
from repro.netsim.delays import ConstantDelay
from repro.netsim.path import PathProfile
from repro.web.http3 import ResponsePlan, run_exchange


class TestResponsePlan:
    def test_header_block_contains_metadata(self):
        plan = ResponsePlan(server_header="LiteSpeed", write_sizes=(1234,))
        head = plan.header_block().decode()
        assert head.startswith("HTTP/3 200\r\n")
        assert "server: LiteSpeed\r\n" in head
        assert "content-length: 1234\r\n" in head
        assert head.endswith("\r\n\r\n")

    def test_redirect_has_location(self):
        plan = ResponsePlan(
            server_header="x",
            status=301,
            redirect_location="https://example.com/start",
            write_sizes=(10,),
        )
        assert b"location: https://example.com/start" in plan.header_block()
        assert plan.is_redirect

    def test_redirect_requires_location(self):
        with pytest.raises(ValueError):
            ResponsePlan(server_header="x", status=301)

    def test_gaps_and_sizes_must_align(self):
        with pytest.raises(ValueError):
            ResponsePlan(server_header="x", write_gaps_ms=(0.0,), write_sizes=(1, 2))

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            ResponsePlan(server_header="x", think_time_ms=-1.0)


class TestExchange:
    def _run(self, plan, seed=0):
        profile = PathProfile(propagation_delay_ms=15.0, jitter=ConstantDelay(0.0))
        return run_exchange(
            "www.test.org",
            plan,
            SpinPolicy.SPIN,
            SpinPolicy.ALWAYS_ZERO,
            profile,
            profile,
            derive_rng(seed, "http3-test"),
        )

    def test_response_parsing(self):
        plan = ResponsePlan(server_header="nginx", write_sizes=(5_000,))
        result = self._run(plan)
        assert (result.status, result.server_header) == (200, "nginx")
        assert result.redirect_location is None
        assert result.body_bytes == 5_000

    def test_redirect_location_extracted(self):
        plan = ResponsePlan(
            server_header="cloudflare",
            status=301,
            redirect_location="https://www.test.org/start",
            write_sizes=(600,),
        )
        result = self._run(plan)
        assert result.status == 301
        assert result.redirect_location == "https://www.test.org/start"

    def test_chunked_writes_deliver_full_body(self):
        plan = ResponsePlan(
            server_header="x",
            write_gaps_ms=(0.0, 50.0, 75.0),
            write_sizes=(10_000, 10_000, 5_000),
        )
        result = self._run(plan)
        assert result.success
        assert result.body_bytes == 25_000

    def test_write_gaps_delay_completion(self):
        fast = self._run(ResponsePlan(server_header="x", write_sizes=(22_000,)))
        slow = self._run(
            ResponsePlan(
                server_header="x",
                write_gaps_ms=(0.0, 400.0),
                write_sizes=(11_000, 11_000),
            )
        )
        last_fast = max(e.time_ms for e in fast.recorder.received)
        last_slow = max(e.time_ms for e in slow.recorder.received)
        assert last_slow > last_fast + 350.0

    def test_think_time_delays_first_body_packet(self):
        lazy = self._run(
            ResponsePlan(server_header="x", think_time_ms=500.0, write_sizes=(2_000,))
        )
        data_packets = [
            e
            for e in lazy.recorder.received
            if e.spin_bit is not None and e.size_bytes > 600
        ]
        assert data_packets[0].time_ms >= 500.0

    def test_deterministic_given_seed(self):
        plan = ResponsePlan(server_header="x", write_sizes=(9_000,))
        a = self._run(plan, seed=9)
        b = self._run(plan, seed=9)
        assert [e.time_ms for e in a.recorder.received] == [
            e.time_ms for e in b.recorder.received
        ]


class TestFinalProbeToggle:
    def test_probe_disabled_sends_no_trailing_pings(self):
        from repro._util.rng import derive_rng
        from repro.core.spin import SpinPolicy
        from repro.netsim.delays import ConstantDelay
        from repro.netsim.path import PathProfile

        plan = ResponsePlan(server_header="x", think_time_ms=10.0, write_sizes=(5_000,))
        profile = PathProfile(propagation_delay_ms=15.0, jitter=ConstantDelay(0.0))

        def run(final_probe):
            return run_exchange(
                "www.probe.test", plan, SpinPolicy.SPIN, SpinPolicy.SPIN,
                profile, profile, derive_rng(21, "probe-toggle"),
                final_probe=final_probe,
            )

        with_probe = run(True)
        without_probe = run(False)
        assert with_probe.success and without_probe.success
        sent_with = len(with_probe.recorder.sent)
        sent_without = len(without_probe.recorder.sent)
        assert sent_with >= sent_without + 2  # the two PING packets
