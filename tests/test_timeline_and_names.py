"""Timeline rendering and list-driven population building."""

import pytest

from repro.analysis.timeline import render_spin_timeline
from repro.internet.population import (
    ListGroup,
    PopulationConfig,
    build_population_from_names,
)
from repro.qlog.recorder import TraceRecorder


def recorder_with_signal():
    recorder = TraceRecorder()
    values = [False, False, True, True, False]
    for pn, value in enumerate(values):
        recorder.on_packet_received(pn * 30.0, "1RTT", pn, value, 100)
    return recorder


class TestTimeline:
    def test_renders_edges_and_samples(self):
        text = render_spin_timeline(recorder_with_signal())
        assert "edges: 2" in text
        assert text.count("<- edge") == 2
        assert "sample 60.0 ms" in text
        assert "mean spin RTT estimate: 60.0 ms" in text

    def test_truncation_marks_gap(self):
        recorder = TraceRecorder()
        for pn in range(100):
            recorder.on_packet_received(pn * 1.0, "1RTT", pn, pn % 7 == 0, 100)
        text = render_spin_timeline(recorder, max_packets=20)
        assert "..." in text
        assert text.count("t=") <= 21

    def test_empty_connection(self):
        text = render_spin_timeline(TraceRecorder())
        assert "received 1-RTT packets: 0" in text


class TestPopulationFromNames:
    def test_names_and_groups_preserved(self):
        czds = [f"zone{i}.com" for i in range(40)] + [f"zone{i}.xyz" for i in range(10)]
        toplist = [f"top{i}.org" for i in range(20)]
        population = build_population_from_names(czds, toplist)

        assert len(population.domains) == 70
        assert {d.name for d in population.group_members(ListGroup.TOPLISTS)} == set(
            toplist
        )
        cno = population.group_members(ListGroup.COM_NET_ORG)
        assert all(d.zone == "com" for d in cno)
        assert len(cno) == 40

    def test_scannable(self):
        population = build_population_from_names(
            [f"d{i}.com" for i in range(120)], config=PopulationConfig(seed=3)
        )
        from repro.web.scanner import Scanner

        dataset = Scanner(population).scan()
        resolved = sum(r.resolved for r in dataset.results)
        assert 0 < resolved <= 120
        for result in dataset.results:
            if result.connections:
                assert result.connections[0].domain.startswith("d")

    def test_deterministic(self):
        names = [f"d{i}.net" for i in range(30)]
        a = build_population_from_names(names, config=PopulationConfig(seed=9))
        b = build_population_from_names(names, config=PopulationConfig(seed=9))
        assert [d.provider_name for d in a.domains] == [
            d.provider_name for d in b.domains
        ]

    def test_zone_derived_from_tld(self):
        population = build_population_from_names(["a.shop", "b.com"])
        zones = {d.name: d.zone for d in population.domains}
        assert zones == {"a.shop": "shop", "b.com": "com"}
