"""Figures 3/4: the accuracy study over connection records."""

import pytest

from conftest import make_connection_record, make_observation
from repro.analysis.accuracy import accuracy_study
from repro.core.classify import SpinBehaviour


class TestSeriesSummaries:
    def test_overestimating_connection(self):
        record = make_connection_record(spin_rtts=[300.0], stack_rtts=[50.0])
        study = accuracy_study([record])
        series = study.spin_received
        assert series.connections == 1
        assert series.overestimate_share == 1.0
        assert series.over_200ms_share == 1.0
        assert series.over_factor3_share == 1.0
        assert series.within_25pct_share == 0.0

    def test_accurate_connection(self):
        record = make_connection_record(spin_rtts=[52.0], stack_rtts=[50.0])
        series = accuracy_study([record]).spin_received
        assert series.within_25ms_share == 1.0
        assert series.within_25pct_share == 1.0
        assert series.within_factor2_share == 1.0
        assert series.over_factor3_share == 0.0

    def test_underestimating_connection(self):
        record = make_connection_record(spin_rtts=[20.0], stack_rtts=[50.0])
        series = accuracy_study([record]).spin_received
        assert series.underestimate_share == 1.0
        assert series.overestimate_share == 0.0

    def test_grease_records_go_to_grease_series(self):
        record = make_connection_record(
            spin_rtts=[2.0, 40.0], stack_rtts=[38.0], behaviour=SpinBehaviour.GREASE
        )
        study = accuracy_study([record])
        assert study.grease_received.connections == 1
        assert study.spin_received.connections == 0
        # Grease connections do not enter the reordering comparison.
        assert study.reordering.connections_compared == 0

    def test_records_without_samples_skipped(self):
        no_spin_samples = make_connection_record(spin_rtts=[], stack_rtts=[50.0])
        no_stack = make_connection_record(spin_rtts=[40.0], stack_rtts=[])
        inactive = make_connection_record(spin_rtts=[40.0], stack_rtts=[50.0])
        inactive.observation.values_seen = {False}
        study = accuracy_study([no_spin_samples, no_stack, inactive])
        assert study.spin_received.connections == 0

    def test_histograms_filled(self):
        records = [
            make_connection_record(spin_rtts=[60.0], stack_rtts=[50.0]),
            make_connection_record(spin_rtts=[400.0], stack_rtts=[50.0]),
        ]
        series = accuracy_study(records).spin_received
        assert series.abs_histogram.total == 2
        assert series.ratio_histogram.total == 2
        assert series.abs_histogram.overflow == 1  # +350 ms is beyond 200


class TestReorderingImpact:
    def test_changed_connection_detected(self):
        packets = [
            (0.0, 0, False),
            (40.0, 2, True),   # edge
            (41.0, 1, False),  # straggler: R differs from S
            (80.0, 3, False),
            (120.0, 4, True),
        ]
        record = make_connection_record(
            packets=packets, stack_rtts=[0.5]  # tiny stack RTT: no grease flag
        )
        study = accuracy_study([record])
        impact = study.reordering
        assert impact.connections_compared == 1
        assert impact.connections_changed == 1
        assert impact.changed_share == 1.0

    def test_unchanged_connection(self):
        packets = [(i * 40.0, i, i % 2 == 1) for i in range(6)]
        record = make_connection_record(packets=packets, stack_rtts=[38.0])
        impact = accuracy_study([record]).reordering
        assert impact.connections_compared == 1
        assert impact.connections_changed == 0

    def test_improvement_detection(self):
        """Sorting removes the spurious ultra-short cycle, moving the
        spin mean toward the stack mean."""
        packets = [
            (0.0, 0, False),
            (40.0, 2, True),
            (41.0, 1, False),
            (80.0, 3, False),
            (120.0, 4, True),
            (160.0, 5, False),
        ]
        record = make_connection_record(packets=packets, stack_rtts=[0.5])
        impact = accuracy_study([record]).reordering
        assert impact.connections_changed == 1
        assert impact.changed_improved == 1


class TestEmptyStudy:
    def test_all_shares_zero_without_data(self):
        study = accuracy_study([])
        assert study.spin_received.overestimate_share == 0.0
        assert study.spin_received.within_25pct_share == 0.0
        assert study.reordering.changed_share == 0.0
        assert study.reordering.below_1ms_share == 0.0
