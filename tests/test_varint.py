"""QUIC varint encoding (RFC 9000 Section 16)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.varint import (
    MAX_VARINT,
    decode_varint,
    encode_varint,
    varint_length,
)
from repro.quic.varint import VarintError


class TestKnownVectors:
    """The worked examples from RFC 9000 Appendix A.1."""

    def test_eight_byte_example(self):
        data = bytes.fromhex("c2197c5eff14e88c")
        value, offset = decode_varint(data)
        assert value == 151_288_809_941_952_652
        assert offset == 8

    def test_four_byte_example(self):
        value, offset = decode_varint(bytes.fromhex("9d7f3e7d"))
        assert value == 494_878_333
        assert offset == 4

    def test_two_byte_example(self):
        value, offset = decode_varint(bytes.fromhex("7bbd"))
        assert value == 15_293
        assert offset == 2

    def test_one_byte_example(self):
        value, offset = decode_varint(bytes.fromhex("25"))
        assert value == 37
        assert offset == 1


class TestLengths:
    def test_boundaries(self):
        assert varint_length(0) == 1
        assert varint_length(63) == 1
        assert varint_length(64) == 2
        assert varint_length(16_383) == 2
        assert varint_length(16_384) == 4
        assert varint_length((1 << 30) - 1) == 4
        assert varint_length(1 << 30) == 8
        assert varint_length(MAX_VARINT) == 8

    def test_out_of_range(self):
        with pytest.raises(VarintError):
            varint_length(-1)
        with pytest.raises(VarintError):
            varint_length(MAX_VARINT + 1)
        with pytest.raises(VarintError):
            encode_varint(MAX_VARINT + 1)


class TestDecodeErrors:
    def test_empty_input(self):
        with pytest.raises(VarintError):
            decode_varint(b"")

    def test_truncated_multibyte(self):
        encoded = encode_varint(20_000)
        with pytest.raises(VarintError):
            decode_varint(encoded[:-1])

    def test_offset_beyond_end(self):
        with pytest.raises(VarintError):
            decode_varint(b"\x25", offset=1)


class TestOffsets:
    def test_decoding_advances_offset(self):
        blob = encode_varint(5) + encode_varint(70_000) + encode_varint(1)
        value, offset = decode_varint(blob, 0)
        assert value == 5
        value, offset = decode_varint(blob, offset)
        assert value == 70_000
        value, offset = decode_varint(blob, offset)
        assert value == 1
        assert offset == len(blob)


@given(st.integers(min_value=0, max_value=MAX_VARINT))
def test_roundtrip(value):
    encoded = encode_varint(value)
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == len(encoded)
    assert len(encoded) == varint_length(value)


@given(st.integers(min_value=0, max_value=MAX_VARINT), st.binary(max_size=8))
def test_roundtrip_with_trailing_bytes(value, trailing):
    encoded = encode_varint(value) + trailing
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == varint_length(value)
