"""Crash-safe campaign resume (repro.faults.checkpoint).

A checkpointed scan must (a) produce exactly the dataset of a
non-checkpointed run, (b) resume after a crash — including with a
different worker count — to the bit-identical merged result, (c) treat
damaged shards as "not scanned yet", and (d) refuse to mix two different
campaigns in one directory.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.artifacts import record_to_dict
from repro.faults import (
    BreakerPolicy,
    CheckpointError,
    CheckpointStore,
    ResilienceConfig,
    RetryPolicy,
    parse_fault_plan,
    scan_fingerprint,
)
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner

# Faults + resilience on, so checkpoint shards round-trip the failure
# taxonomy (not just the happy-path record fields), and a breaker is
# configured to prove the post-merge pass composes with resume.
CONFIG = ScanConfig(
    faults=parse_fault_plan("blackhole:0.05,reset:0.06,vn-failure:0.04"),
    resilience=ResilienceConfig(
        connect_timeout_ms=20_000.0,
        retry=RetryPolicy(max_attempts=2),
        breaker=BreakerPolicy(failure_threshold=4, cooldown_attempts=6),
    ),
)
CHUNK = 64
N_DOMAINS = 300


def _scanner(population, workers: int = 1) -> Scanner:
    return Scanner(
        population,
        CONFIG,
        parallel=ParallelScanConfig(workers=workers, chunk_size=CHUNK),
    )


def _dataset_dicts(dataset) -> list[dict]:
    rows = []
    for result in dataset.results:
        rows.append(
            {
                "domain": result.domain.name,
                "resolved": result.resolved,
                "quic_support": result.quic_support,
                "resolved_ip": str(result.resolved_ip) if result.resolved_ip else None,
                "failure": result.failure.value if result.failure else None,
                "connections": [record_to_dict(c) for c in result.connections],
            }
        )
    return rows


@pytest.fixture(scope="module")
def targets(tiny_population):
    return tiny_population.domains[:N_DOMAINS]


@pytest.fixture(scope="module")
def plain_dataset(tiny_population, targets):
    """The ground truth: the same scan without any checkpointing."""
    return _scanner(tiny_population).scan(domains=targets)


class TestCheckpointedScan:
    def test_equals_non_checkpointed_run(
        self, tiny_population, targets, plain_dataset, tmp_path
    ):
        dataset = _scanner(tiny_population).scan(
            domains=targets, checkpoint_dir=tmp_path / "ckpt"
        )
        assert _dataset_dicts(dataset) == _dataset_dicts(plain_dataset)

    def test_writes_manifest_and_all_shards(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["chunk"] == CHUNK
        assert manifest["fingerprint"]["targets"] == len(targets)
        shards = sorted(p.name for p in directory.glob("shard-*.cbr"))
        expected = -(-len(targets) // CHUNK)  # ceil division
        assert len(shards) == expected
        assert shards[0] == "shard-00000.cbr"

    def test_full_resume_never_rescans(
        self, tiny_population, targets, plain_dataset, tmp_path, monkeypatch
    ):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        # With every shard on disk, a resume must not scan one domain.
        scanner = _scanner(tiny_population)
        monkeypatch.setattr(
            scanner,
            "_scan_domain",
            lambda *a, **k: pytest.fail("resume re-scanned a completed shard"),
        )
        dataset = scanner.scan(domains=targets, checkpoint_dir=directory)
        assert _dataset_dicts(dataset) == _dataset_dicts(plain_dataset)


class TestCrashAndResume:
    def test_interrupted_scan_resumes_bit_identically(
        self, tiny_population, targets, plain_dataset, tmp_path, monkeypatch
    ):
        directory = tmp_path / "ckpt"
        crashing = _scanner(tiny_population)
        real = crashing._scan_domain
        calls = {"n": 0}

        def dying_scan_domain(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 150:
                raise RuntimeError("simulated crash")
            return real(*args, **kwargs)

        monkeypatch.setattr(crashing, "_scan_domain", dying_scan_domain)
        with pytest.raises(RuntimeError, match="simulated crash"):
            crashing.scan(domains=targets, checkpoint_dir=directory)
        # The first two full shards (2 x 64 domains) finished and were
        # persisted before the crash; the interrupted shard was not.
        saved = sorted(p.name for p in directory.glob("shard-*.cbr"))
        assert saved == ["shard-00000.cbr", "shard-00001.cbr"]

        resumed = _scanner(tiny_population).scan(
            domains=targets, checkpoint_dir=directory
        )
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)

    def test_resume_with_different_worker_count(
        self, tiny_population, targets, plain_dataset, tmp_path
    ):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population, workers=1).scan(
            domains=targets, checkpoint_dir=directory
        )
        (directory / "shard-00002.cbr").unlink()  # crash loses one shard
        resumed = _scanner(tiny_population, workers=4).scan(
            domains=targets, checkpoint_dir=directory
        )
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)

    def test_corrupt_shard_is_rescanned(
        self, tiny_population, targets, plain_dataset, tmp_path
    ):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        shard = directory / "shard-00001.cbr"
        payload = shard.read_bytes()
        shard.write_bytes(payload[: len(payload) // 2])  # torn write
        resumed = _scanner(tiny_population).scan(
            domains=targets, checkpoint_dir=directory
        )
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)
        # The re-scan also re-persisted the shard, intact again
        # (cbr encoding is deterministic, so bytes match exactly).
        assert shard.read_bytes() == payload


class TestCampaignIdentity:
    def test_different_config_is_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        other = Scanner(
            tiny_population,
            ScanConfig(),  # different fault/resilience regime
            parallel=ParallelScanConfig(chunk_size=CHUNK),
        )
        with pytest.raises(CheckpointError, match="different scan"):
            other.scan(domains=targets, checkpoint_dir=directory)

    def test_different_week_is_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(
            week_label="cw20-2023", domains=targets, checkpoint_dir=directory
        )
        with pytest.raises(CheckpointError, match="different scan"):
            _scanner(tiny_population).scan(
                week_label="cw21-2023", domains=targets, checkpoint_dir=directory
            )

    def test_different_targets_are_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        with pytest.raises(CheckpointError, match="different scan"):
            _scanner(tiny_population).scan(
                domains=targets[:-1], checkpoint_dir=directory
            )

    def test_unreadable_manifest_is_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        (directory / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable checkpoint manifest"):
            _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)


class TestStoreInternals:
    FINGERPRINT = {"seed": 1, "targets": 2}

    def test_chunk_validation(self, tmp_path):
        with pytest.raises(CheckpointError, match="chunk must be >= 1"):
            CheckpointStore(tmp_path, self.FINGERPRINT, chunk=0)

    def test_load_missing_shard_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path, self.FINGERPRINT, chunk=4)
        assert store.load_shard(0, []) is None
        assert store.shards_loaded == 0

    def test_shard_domain_mismatch_is_none(self, tiny_population, tmp_path):
        store = CheckpointStore(tmp_path, self.FINGERPRINT, chunk=4)
        store.legacy_shard_path(0).write_text('{"domain":"not-the-one"}\n')
        assert store.load_shard(0, tiny_population.domains[:1]) is None

    def test_non_cbr_bytes_at_shard_path_is_none(self, tiny_population, tmp_path):
        store = CheckpointStore(tmp_path, self.FINGERPRINT, chunk=4)
        store.shard_path(0).write_bytes(b"not a cbr file at all\n")
        assert store.load_shard(0, tiny_population.domains[:1]) is None

    def test_fingerprint_sensitivity(self, tiny_population):
        domains = tiny_population.domains[:10]
        base = scan_fingerprint(1, "cw20-2023", 4, 0, domains, "cfg")
        assert base == scan_fingerprint(1, "cw20-2023", 4, 0, domains, "cfg")
        assert base != scan_fingerprint(2, "cw20-2023", 4, 0, domains, "cfg")
        assert base != scan_fingerprint(1, "cw20-2023", 4, 0, domains, "other-cfg")
        assert base != scan_fingerprint(1, "cw20-2023", 4, 0, domains[:-1], "cfg")
        assert base != scan_fingerprint(1, "cw20-2023", 4, 1, domains, "cfg")

class TestLegacyShards:
    def test_legacy_jsonl_shard_still_loads(
        self, tiny_population, targets, plain_dataset, tmp_path, monkeypatch
    ):
        """Directories written before the cbr store must still resume."""
        import json as jsonlib

        from repro.faults.checkpoint import _domain_result_to_dict

        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        # Rewrite shard 0 in the pre-cbr JSONL layout and drop the cbr
        # file, as if the directory came from an older version.
        scanner = _scanner(tiny_population)
        store_results = plain_dataset.results[:CHUNK]
        legacy = directory / "shard-00000.jsonl"
        legacy.write_text(
            "\n".join(
                jsonlib.dumps(_domain_result_to_dict(r), separators=(",", ":"))
                for r in store_results
            )
            + "\n"
        )
        (directory / "shard-00000.cbr").unlink()
        monkeypatch.setattr(
            scanner,
            "_scan_domain",
            lambda *a, **k: pytest.fail("resume re-scanned a legacy shard"),
        )
        resumed = scanner.scan(domains=targets, checkpoint_dir=directory)
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)


def _pool_scanner(population, workers: int) -> Scanner:
    return Scanner(
        population,
        CONFIG,
        parallel=ParallelScanConfig(
            workers=workers, chunk_size=CHUNK, force_pool=True
        ),
    )


class TestWorkStealingResume:
    """Crash-resume through the real submit/steal pool scheduler.

    Checkpoint under workers=4, lose shards, resume under workers=2:
    shard files are chunk-aligned regardless of how the scheduler split
    the work, so the mixed-worker merge stays bit-identical to an
    uninterrupted sequential run.
    """

    def test_checkpoint_4_workers_resume_2_workers(
        self, tiny_population, targets, plain_dataset, tmp_path
    ):
        first = _pool_scanner(tiny_population, workers=4)
        try:
            first.scan(domains=targets, checkpoint_dir=tmp_path)
        finally:
            first.close()
        shard_files = sorted(p.name for p in tmp_path.glob("shard-*.cbr"))
        assert len(shard_files) == -(-N_DOMAINS // CHUNK)

        # Simulated crash: two shards never made it to disk.
        (tmp_path / "shard-00001.cbr").unlink()
        (tmp_path / "shard-00003.cbr").unlink()
        untouched = (tmp_path / "shard-00002.cbr").read_bytes()

        second = _pool_scanner(tiny_population, workers=2)
        try:
            resumed = second.scan(domains=targets, checkpoint_dir=tmp_path)
        finally:
            second.close()
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)
        # The surviving shard was loaded, not rewritten.
        assert (tmp_path / "shard-00002.cbr").read_bytes() == untouched
        # The lost shards are back, re-persisted from worker payloads.
        assert sorted(p.name for p in tmp_path.glob("shard-*.cbr")) == shard_files

    def test_split_shard_files_load_back(self, tiny_population, tmp_path):
        """A shard persisted from several split payloads (frame concat)
        must load back identically to one saved in a single piece."""
        from repro.faults.checkpoint import (
            CheckpointStore,
            encode_domain_results,
            scan_fingerprint,
        )

        targets = tiny_population.domains[:CHUNK]
        results = _scanner(tiny_population).scan_sequential(
            targets, "cw20-2023", 4
        )
        store = CheckpointStore(
            tmp_path,
            fingerprint=scan_fingerprint(
                tiny_population.config.seed, "cw20-2023", 4, 0, targets, "cfg"
            ),
            chunk=CHUNK,
        )
        store.save_shard_payloads(
            0,
            [
                encode_domain_results(results[:20]),
                encode_domain_results(results[20:45]),
                encode_domain_results(results[45:]),
            ],
        )
        loaded = store.load_shard(0, targets)
        assert loaded is not None
        assert [record_to_dict(c) for r in loaded for c in r.connections] == [
            record_to_dict(c) for r in results for c in r.connections
        ]


class TestAsyncWriter:
    """The background checkpoint writer's durability and error contract."""

    def test_saves_are_durable_after_close(self, tiny_population, tmp_path):
        from repro.faults import AsyncCheckpointWriter

        targets = tiny_population.domains[:10]
        results = _scanner(tiny_population).scan_sequential(
            targets, "cw20-2023", 4
        )
        store = CheckpointStore(
            tmp_path,
            fingerprint=scan_fingerprint(
                tiny_population.config.seed, "cw20-2023", 4, 0, targets, "cfg"
            ),
            chunk=10,
        )
        writer = AsyncCheckpointWriter(store)
        writer.save_shard(0, results)
        writer.close()
        assert (tmp_path / "shard-00000.cbr").is_file()
        assert store.load_shard(0, targets) is not None
        writer.close()  # idempotent
        with pytest.raises(RuntimeError):
            writer.save_shard(1, results)

    def test_write_errors_surface_at_close(self, tmp_path):
        from repro.faults import AsyncCheckpointWriter

        class ExplodingStore:
            chunk = 10

            def save_shard(self, shard_index, results):
                raise OSError("disk full")

        writer = AsyncCheckpointWriter(ExplodingStore())
        writer.save_shard(0, [])
        with pytest.raises(OSError, match="disk full"):
            writer.close()

    def test_close_can_suppress_errors(self, tmp_path):
        from repro.faults import AsyncCheckpointWriter

        class ExplodingStore:
            chunk = 10

            def save_shard_payloads(self, shard_index, payloads):
                raise OSError("disk full")

        writer = AsyncCheckpointWriter(ExplodingStore())
        writer.save_shard_payloads(0, [b""])
        writer.close(suppress_errors=True)
