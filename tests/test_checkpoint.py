"""Crash-safe campaign resume (repro.faults.checkpoint).

A checkpointed scan must (a) produce exactly the dataset of a
non-checkpointed run, (b) resume after a crash — including with a
different worker count — to the bit-identical merged result, (c) treat
damaged shards as "not scanned yet", and (d) refuse to mix two different
campaigns in one directory.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.artifacts import record_to_dict
from repro.faults import (
    BreakerPolicy,
    CheckpointError,
    CheckpointStore,
    ResilienceConfig,
    RetryPolicy,
    parse_fault_plan,
    scan_fingerprint,
)
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner

# Faults + resilience on, so checkpoint shards round-trip the failure
# taxonomy (not just the happy-path record fields), and a breaker is
# configured to prove the post-merge pass composes with resume.
CONFIG = ScanConfig(
    faults=parse_fault_plan("blackhole:0.05,reset:0.06,vn-failure:0.04"),
    resilience=ResilienceConfig(
        connect_timeout_ms=20_000.0,
        retry=RetryPolicy(max_attempts=2),
        breaker=BreakerPolicy(failure_threshold=4, cooldown_attempts=6),
    ),
)
CHUNK = 64
N_DOMAINS = 300


def _scanner(population, workers: int = 1) -> Scanner:
    return Scanner(
        population,
        CONFIG,
        parallel=ParallelScanConfig(workers=workers, chunk_size=CHUNK),
    )


def _dataset_dicts(dataset) -> list[dict]:
    rows = []
    for result in dataset.results:
        rows.append(
            {
                "domain": result.domain.name,
                "resolved": result.resolved,
                "quic_support": result.quic_support,
                "resolved_ip": str(result.resolved_ip) if result.resolved_ip else None,
                "failure": result.failure.value if result.failure else None,
                "connections": [record_to_dict(c) for c in result.connections],
            }
        )
    return rows


@pytest.fixture(scope="module")
def targets(tiny_population):
    return tiny_population.domains[:N_DOMAINS]


@pytest.fixture(scope="module")
def plain_dataset(tiny_population, targets):
    """The ground truth: the same scan without any checkpointing."""
    return _scanner(tiny_population).scan(domains=targets)


class TestCheckpointedScan:
    def test_equals_non_checkpointed_run(
        self, tiny_population, targets, plain_dataset, tmp_path
    ):
        dataset = _scanner(tiny_population).scan(
            domains=targets, checkpoint_dir=tmp_path / "ckpt"
        )
        assert _dataset_dicts(dataset) == _dataset_dicts(plain_dataset)

    def test_writes_manifest_and_all_shards(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["chunk"] == CHUNK
        assert manifest["fingerprint"]["targets"] == len(targets)
        shards = sorted(p.name for p in directory.glob("shard-*.cbr"))
        expected = -(-len(targets) // CHUNK)  # ceil division
        assert len(shards) == expected
        assert shards[0] == "shard-00000.cbr"

    def test_full_resume_never_rescans(
        self, tiny_population, targets, plain_dataset, tmp_path, monkeypatch
    ):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        # With every shard on disk, a resume must not scan one domain.
        scanner = _scanner(tiny_population)
        monkeypatch.setattr(
            scanner,
            "_scan_domain",
            lambda *a, **k: pytest.fail("resume re-scanned a completed shard"),
        )
        dataset = scanner.scan(domains=targets, checkpoint_dir=directory)
        assert _dataset_dicts(dataset) == _dataset_dicts(plain_dataset)


class TestCrashAndResume:
    def test_interrupted_scan_resumes_bit_identically(
        self, tiny_population, targets, plain_dataset, tmp_path, monkeypatch
    ):
        directory = tmp_path / "ckpt"
        crashing = _scanner(tiny_population)
        real = crashing._scan_domain
        calls = {"n": 0}

        def dying_scan_domain(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 150:
                raise RuntimeError("simulated crash")
            return real(*args, **kwargs)

        monkeypatch.setattr(crashing, "_scan_domain", dying_scan_domain)
        with pytest.raises(RuntimeError, match="simulated crash"):
            crashing.scan(domains=targets, checkpoint_dir=directory)
        # The first two full shards (2 x 64 domains) finished and were
        # persisted before the crash; the interrupted shard was not.
        saved = sorted(p.name for p in directory.glob("shard-*.cbr"))
        assert saved == ["shard-00000.cbr", "shard-00001.cbr"]

        resumed = _scanner(tiny_population).scan(
            domains=targets, checkpoint_dir=directory
        )
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)

    def test_resume_with_different_worker_count(
        self, tiny_population, targets, plain_dataset, tmp_path
    ):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population, workers=1).scan(
            domains=targets, checkpoint_dir=directory
        )
        (directory / "shard-00002.cbr").unlink()  # crash loses one shard
        resumed = _scanner(tiny_population, workers=4).scan(
            domains=targets, checkpoint_dir=directory
        )
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)

    def test_corrupt_shard_is_rescanned(
        self, tiny_population, targets, plain_dataset, tmp_path
    ):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        shard = directory / "shard-00001.cbr"
        payload = shard.read_bytes()
        shard.write_bytes(payload[: len(payload) // 2])  # torn write
        resumed = _scanner(tiny_population).scan(
            domains=targets, checkpoint_dir=directory
        )
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)
        # The re-scan also re-persisted the shard, intact again
        # (cbr encoding is deterministic, so bytes match exactly).
        assert shard.read_bytes() == payload


class TestCampaignIdentity:
    def test_different_config_is_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        other = Scanner(
            tiny_population,
            ScanConfig(),  # different fault/resilience regime
            parallel=ParallelScanConfig(chunk_size=CHUNK),
        )
        with pytest.raises(CheckpointError, match="different scan"):
            other.scan(domains=targets, checkpoint_dir=directory)

    def test_different_week_is_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(
            week_label="cw20-2023", domains=targets, checkpoint_dir=directory
        )
        with pytest.raises(CheckpointError, match="different scan"):
            _scanner(tiny_population).scan(
                week_label="cw21-2023", domains=targets, checkpoint_dir=directory
            )

    def test_different_targets_are_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        with pytest.raises(CheckpointError, match="different scan"):
            _scanner(tiny_population).scan(
                domains=targets[:-1], checkpoint_dir=directory
            )

    def test_unreadable_manifest_is_rejected(self, tiny_population, targets, tmp_path):
        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        (directory / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable checkpoint manifest"):
            _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)


class TestStoreInternals:
    FINGERPRINT = {"seed": 1, "targets": 2}

    def test_chunk_validation(self, tmp_path):
        with pytest.raises(CheckpointError, match="chunk must be >= 1"):
            CheckpointStore(tmp_path, self.FINGERPRINT, chunk=0)

    def test_load_missing_shard_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path, self.FINGERPRINT, chunk=4)
        assert store.load_shard(0, []) is None
        assert store.shards_loaded == 0

    def test_shard_domain_mismatch_is_none(self, tiny_population, tmp_path):
        store = CheckpointStore(tmp_path, self.FINGERPRINT, chunk=4)
        store.legacy_shard_path(0).write_text('{"domain":"not-the-one"}\n')
        assert store.load_shard(0, tiny_population.domains[:1]) is None

    def test_non_cbr_bytes_at_shard_path_is_none(self, tiny_population, tmp_path):
        store = CheckpointStore(tmp_path, self.FINGERPRINT, chunk=4)
        store.shard_path(0).write_bytes(b"not a cbr file at all\n")
        assert store.load_shard(0, tiny_population.domains[:1]) is None

    def test_fingerprint_sensitivity(self, tiny_population):
        domains = tiny_population.domains[:10]
        base = scan_fingerprint(1, "cw20-2023", 4, 0, domains, "cfg")
        assert base == scan_fingerprint(1, "cw20-2023", 4, 0, domains, "cfg")
        assert base != scan_fingerprint(2, "cw20-2023", 4, 0, domains, "cfg")
        assert base != scan_fingerprint(1, "cw20-2023", 4, 0, domains, "other-cfg")
        assert base != scan_fingerprint(1, "cw20-2023", 4, 0, domains[:-1], "cfg")
        assert base != scan_fingerprint(1, "cw20-2023", 4, 1, domains, "cfg")

class TestLegacyShards:
    def test_legacy_jsonl_shard_still_loads(
        self, tiny_population, targets, plain_dataset, tmp_path, monkeypatch
    ):
        """Directories written before the cbr store must still resume."""
        import json as jsonlib

        from repro.faults.checkpoint import _domain_result_to_dict

        directory = tmp_path / "ckpt"
        _scanner(tiny_population).scan(domains=targets, checkpoint_dir=directory)
        # Rewrite shard 0 in the pre-cbr JSONL layout and drop the cbr
        # file, as if the directory came from an older version.
        scanner = _scanner(tiny_population)
        store_results = plain_dataset.results[:CHUNK]
        legacy = directory / "shard-00000.jsonl"
        legacy.write_text(
            "\n".join(
                jsonlib.dumps(_domain_result_to_dict(r), separators=(",", ":"))
                for r in store_results
            )
            + "\n"
        )
        (directory / "shard-00000.cbr").unlink()
        monkeypatch.setattr(
            scanner,
            "_scan_domain",
            lambda *a, **k: pytest.fail("resume re-scanned a legacy shard"),
        )
        resumed = scanner.scan(domains=targets, checkpoint_dir=directory)
        assert _dataset_dicts(resumed) == _dataset_dicts(plain_dataset)
