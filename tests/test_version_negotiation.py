"""Version negotiation, Retry, and the version-distribution analysis."""

import pytest

from repro._util.rng import derive_rng
from repro.core.observer import observe_recorder
from repro.core.spin import SpinPolicy
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.quic.connection_id import ConnectionId
from repro.quic.datagram import decode_datagram
from repro.quic.packet import (
    HeaderParseError,
    LongHeader,
    LongPacketType,
    PacketType,
    VersionNegotiationHeader,
    parse_header,
)
from repro.quic.version import QuicVersion
from repro.web.http3 import ResponsePlan, run_exchange

DCID = ConnectionId(bytes(range(8)))
SCID = ConnectionId(bytes(range(8, 16)))


class TestVnWireFormat:
    def test_roundtrip(self):
        header = VersionNegotiationHeader(
            destination_cid=DCID,
            source_cid=SCID,
            supported_versions=(1, 0xFF00001D),
        )
        parsed, offset = parse_header(header.encode(), short_dcid_length=8)
        assert isinstance(parsed, VersionNegotiationHeader)
        assert parsed.supported_versions == (1, 0xFF00001D)
        assert parsed.destination_cid == DCID
        assert offset == len(header.encode())

    def test_version_list_required(self):
        with pytest.raises(ValueError):
            VersionNegotiationHeader(DCID, SCID, supported_versions=())

    def test_malformed_version_list(self):
        data = VersionNegotiationHeader(DCID, SCID, (1,)).encode() + b"\x01"
        with pytest.raises(HeaderParseError):
            parse_header(data, short_dcid_length=8)

    def test_datagram_decode(self):
        data = VersionNegotiationHeader(DCID, SCID, (1, 2)).encode()
        (packet,) = decode_datagram(data, short_dcid_length=8)
        assert packet.header.packet_type is PacketType.VERSION_NEGOTIATION
        assert packet.frames == []


class TestRetryWireFormat:
    def test_roundtrip_with_token(self):
        header = LongHeader(
            long_type=LongPacketType.RETRY,
            version=1,
            destination_cid=DCID,
            source_cid=SCID,
            token=b"retry:abcdef",
        )
        parsed, offset = parse_header(header.encode(), short_dcid_length=8)
        assert isinstance(parsed, LongHeader)
        assert parsed.long_type is LongPacketType.RETRY
        assert parsed.token == b"retry:abcdef"
        assert offset == len(header.encode())


def exchange(client_cfg=None, server_cfg=None, seed=1):
    plan = ResponsePlan(server_header="LiteSpeed", think_time_ms=25.0, write_sizes=(20_000,))
    profile = PathProfile(propagation_delay_ms=18.0)
    return run_exchange(
        "www.vn.test",
        plan,
        SpinPolicy.SPIN,
        SpinPolicy.SPIN,
        profile,
        profile,
        derive_rng(seed, "vn-exchange"),
        client_config=client_cfg,
        server_config=server_cfg,
    )


class TestVersionNegotiationFlow:
    def test_client_falls_back_to_draft(self):
        server_cfg = ConnectionConfig(
            version=QuicVersion.DRAFT_29,
            supported_versions=(QuicVersion.DRAFT_29, QuicVersion.DRAFT_27),
        )
        result = exchange(server_cfg=server_cfg)
        assert result.success
        assert result.client.version == int(QuicVersion.DRAFT_29)
        types = {e.packet_type for e in result.recorder.received}
        assert "version_negotiation" in types

    def test_spin_bit_works_on_draft_versions(self):
        server_cfg = ConnectionConfig(
            version=QuicVersion.DRAFT_29,
            supported_versions=(QuicVersion.DRAFT_29,),
        )
        result = exchange(server_cfg=server_cfg)
        assert observe_recorder(result.recorder).spins

    def test_no_common_version_fails(self):
        client_cfg = ConnectionConfig(supported_versions=(QuicVersion.VERSION_1,))
        server_cfg = ConnectionConfig(
            version=QuicVersion.DRAFT_27,
            supported_versions=(QuicVersion.DRAFT_27,),
        )
        result = exchange(client_cfg=client_cfg, server_cfg=server_cfg)
        assert not result.success
        assert "version" in (result.client.failed or "")

    def test_no_vn_when_versions_match(self):
        result = exchange()
        types = {e.packet_type for e in result.recorder.received}
        assert "version_negotiation" not in types
        assert result.client.version == int(QuicVersion.VERSION_1)


class TestRetryFlow:
    def test_retry_roundtrip_completes(self):
        result = exchange(server_cfg=ConnectionConfig(retry_required=True))
        assert result.success
        types = {e.packet_type for e in result.recorder.received}
        assert "retry" in types

    def test_retry_adds_a_round_trip(self):
        plain = exchange(seed=7)
        retried = exchange(seed=7, server_cfg=ConnectionConfig(retry_required=True))
        first_data_plain = min(
            e.time_ms for e in plain.recorder.received if e.packet_type == "1RTT"
        )
        first_data_retried = min(
            e.time_ms for e in retried.recorder.received if e.packet_type == "1RTT"
        )
        assert first_data_retried > first_data_plain + 30.0  # ~one extra RTT

    def test_spin_unaffected_by_retry(self):
        result = exchange(server_cfg=ConnectionConfig(retry_required=True))
        assert observe_recorder(result.recorder).spins


class TestVersionDistribution:
    def test_distribution_from_records(self):
        from conftest import make_connection_record
        from repro.analysis.versions import version_distribution

        records = []
        for version, n in ((1, 3), (0xFF00001D, 1)):
            for _ in range(n):
                record = make_connection_record()
                record.negotiated_version = version
                records.append(record)
        failed = make_connection_record()
        failed.success = False
        records.append(failed)

        shares = version_distribution(records)
        assert shares[0].label == "QUIC v1"
        assert shares[0].connections == 3
        assert shares[0].share == pytest.approx(0.75)
        assert shares[1].label == "draft-29"

    def test_unknown_version_labeled(self):
        from repro.analysis.versions import _label

        assert _label(0xDEADBEEF).startswith("unknown")
