"""The columnar binary artifact format (cbr).

The format's contract is *bit-identical* round trips: every
:class:`~repro.web.scanner.ConnectionRecord` a scan produces must come
back equal after encode + decode, the encoding itself must be
deterministic (same records -> same bytes), and damage must degrade the
way the tolerant qlog reader does — one counted error per bad chunk,
never a crash, never silently wrong records.
"""

from __future__ import annotations

import io
from dataclasses import replace

import pytest

from conftest import make_connection_record, make_observation
from repro.artifacts import (
    FORMAT_CBR,
    FORMAT_JSONL,
    detect_format,
    open_record_batches,
    resolve_write_format,
    write_records,
)
from repro.artifacts.cbr import (
    CBR_MAGIC,
    CbrFormatError,
    CbrIndexedReader,
    CbrReader,
    CbrWriter,
    FOOTER_SCHEMA,
    KIND_DOMAINS,
    bloom_might_contain,
    concat_frames,
    read_footer,
    week_serial,
    write_records_cbr,
)
from repro.cli import main
from repro.faults.taxonomy import FailureKind
from repro.web.scanner import ScanConfig, Scanner


def encode(records, chunk_records: int = 128) -> bytes:
    buffer = io.BytesIO()
    write_records_cbr(records, buffer, chunk_records=chunk_records)
    return buffer.getvalue()


def decode(payload: bytes, **kwargs) -> list:
    reader = CbrReader(io.BytesIO(payload), **kwargs)
    return list(reader.iter_records())


def artifact_view(records) -> list:
    """Records as the plain artifact schema persists them.

    Sampled qlog documents are a checkpoint-shard extra: neither the
    JSONL schema (paper Appendix B) nor a ``KIND_RECORDS`` cbr file
    carries them, so round trips compare against qlog-stripped records.
    """
    return [replace(r, qlog=None) for r in records]


@pytest.fixture(scope="module")
def scan_records(tiny_population):
    dataset = Scanner(tiny_population, ScanConfig(qlog_sample_rate=0.2)).scan(
        week_label="cw20-2023", ip_version=4, domains=tiny_population.domains[:600]
    )
    return list(dataset.connection_records())


class TestRoundTrip:
    def test_scan_records_bit_identical(self, scan_records):
        assert len(scan_records) > 50
        assert any(r.qlog is not None for r in scan_records)
        decoded = decode(encode(scan_records))
        assert decoded == artifact_view(scan_records)

    def test_encoding_is_deterministic(self, scan_records):
        first = encode(scan_records)
        second = encode(decode(first))
        assert first == second

    def test_empty_artifact(self):
        payload = encode([])
        assert decode(payload) == []
        footer = read_footer(io.BytesIO(payload))
        assert footer["records"] == 0
        assert footer["chunks"] == []

    def test_record_without_edges(self):
        """A one-packet connection has no edges and no RTT samples."""
        record = make_connection_record(packets=[(0.0, 0, False)])
        assert record.observation.edges_received == []
        assert decode(encode([record])) == [record]

    def test_unicode_domains(self):
        records = [
            make_connection_record(domain="bücher.example"),
            make_connection_record(domain="例え.テスト"),
        ]
        decoded = decode(encode(records))
        assert decoded == records
        assert decoded[0].host == "www.bücher.example"

    def test_failure_kind_present_and_absent(self):
        failed = make_connection_record()
        failed.success = False
        failed.status = None
        failed.failure = FailureKind.HANDSHAKE_TIMEOUT
        clean = make_connection_record()
        decoded = decode(encode([failed, clean]))
        assert decoded == [failed, clean]
        assert decoded[0].failure is FailureKind.HANDSHAKE_TIMEOUT
        assert decoded[1].failure is None

    def test_chunk_boundaries_do_not_matter(self, scan_records):
        small = decode(encode(scan_records, chunk_records=7))
        assert small == artifact_view(scan_records)


class TestProjection:
    def test_skipping_edges_keeps_rtts_exact(self, scan_records):
        reader = CbrReader(io.BytesIO(encode(scan_records)))
        projected = [
            record
            for batch in reader.record_batches(
                want_edges_received=False, want_edges_sorted=False
            )
            for record in batch
        ]
        assert len(projected) == len(scan_records)
        for got, want in zip(projected, scan_records):
            assert got.observation.edges_received == []
            assert got.observation.edges_sorted == []
            assert got.observation.rtts_received_ms == want.observation.rtts_received_ms
            assert got.observation.rtts_sorted_ms == want.observation.rtts_sorted_ms
            assert got.observation.values_seen == want.observation.values_seen


class TestCorruption:
    def test_truncated_stream_counts_one_error(self, scan_records):
        payload = encode(scan_records, chunk_records=32)
        reader = CbrReader(io.BytesIO(payload[: len(payload) // 2]), errors="count")
        decoded = list(reader.iter_records())
        assert reader.corrupt_chunks == 1
        assert 0 < len(decoded) < len(scan_records)
        assert decoded == artifact_view(scan_records[: len(decoded)])

    def test_crc_mismatch_skips_only_that_chunk(self, scan_records):
        payload = bytearray(encode(scan_records, chunk_records=32))
        # Flip one byte inside the first chunk's compressed payload; the
        # chunk header starts right after magic+version and frame byte.
        payload[len(CBR_MAGIC) + 1 + 1 + 13 + 20] ^= 0xFF
        reader = CbrReader(io.BytesIO(bytes(payload)), errors="count")
        decoded = list(reader.iter_records())
        assert reader.corrupt_chunks == 1
        assert decoded == artifact_view(scan_records[32:])

    def test_raise_mode_raises(self, scan_records):
        payload = encode(scan_records)
        with pytest.raises(CbrFormatError):
            decode(payload[: len(payload) // 2])

    def test_bad_magic_rejected(self):
        with pytest.raises(CbrFormatError):
            CbrReader(io.BytesIO(b"not a cbr file at all"))

    def test_domain_batches_rejects_record_artifact(self, scan_records):
        reader = CbrReader(io.BytesIO(encode(scan_records[:5])))
        with pytest.raises(CbrFormatError):
            list(reader.domain_batches())

    def test_footer_of_truncated_artifact(self, scan_records):
        payload = encode(scan_records)
        with pytest.raises(CbrFormatError):
            read_footer(io.BytesIO(payload[:-4]))


class TestConcatFrames:
    def test_concat_equals_concatenated_records(self, scan_records):
        half = len(scan_records) // 2
        first = encode(scan_records[:half], chunk_records=16)
        second = encode(scan_records[half:], chunk_records=16)
        out = io.BytesIO()
        chunks, records = concat_frames([io.BytesIO(first), io.BytesIO(second)], out)
        assert records == len(scan_records)
        assert chunks > 2
        assert decode(out.getvalue()) == artifact_view(scan_records)
        footer = read_footer(io.BytesIO(out.getvalue()))
        assert footer["records"] == len(scan_records)

    def test_concat_accepts_paths(self, scan_records, tmp_path):
        # The CLI merge path hands shard *paths*, not open streams.
        half = len(scan_records) // 2
        shard_a = tmp_path / "shard-00000.cbr"
        shard_b = tmp_path / "shard-00001.cbr"
        shard_a.write_bytes(encode(scan_records[:half], chunk_records=16))
        shard_b.write_bytes(encode(scan_records[half:], chunk_records=16))
        out = io.BytesIO()
        _, records = concat_frames([str(shard_a), shard_b], out)
        assert records == len(scan_records)
        assert decode(out.getvalue()) == artifact_view(scan_records)

    def test_concat_rejects_damaged_source(self, scan_records):
        payload = bytearray(encode(scan_records[:10]))
        # Flip a byte inside the first chunk's compressed payload.
        payload[len(CBR_MAGIC) + 1 + 1 + 13 + 20] ^= 0xFF
        with pytest.raises(CbrFormatError):
            concat_frames([io.BytesIO(bytes(payload))], io.BytesIO())


class TestFrontDoor:
    def test_detect_format(self, scan_records):
        assert detect_format(encode(scan_records[:1])[:8]) == FORMAT_CBR
        assert detect_format(b'{"schema": 1}') == FORMAT_JSONL
        assert detect_format(b"") == FORMAT_JSONL

    def test_resolve_write_format(self):
        assert resolve_write_format("out.cbr") == FORMAT_CBR
        assert resolve_write_format("out.jsonl") == FORMAT_JSONL
        assert resolve_write_format("-") == FORMAT_JSONL
        assert resolve_write_format("out.jsonl", "cbr") == FORMAT_CBR
        with pytest.raises(ValueError):
            resolve_write_format("out.cbr", "parquet")

    def test_both_formats_decode_identically(self, scan_records, tmp_path):
        jsonl_path = tmp_path / "art.jsonl"
        cbr_path = tmp_path / "art.cbr"
        assert write_records(scan_records, str(jsonl_path)) == len(scan_records)
        assert write_records(scan_records, str(cbr_path)) == len(scan_records)
        with open_record_batches(str(jsonl_path)) as source:
            from_jsonl = list(source.records())
            assert source.format == FORMAT_JSONL
        with open_record_batches(str(cbr_path)) as source:
            from_cbr = list(source.records())
            assert source.format == FORMAT_CBR
        # JSONL drops nothing the analysis reads, but floats go through
        # repr; cbr must match the in-memory records exactly.
        assert from_cbr == artifact_view(scan_records)
        assert [r.domain for r in from_jsonl] == [r.domain for r in scan_records]

    def test_cbr_to_stdout_refused(self, scan_records):
        with pytest.raises(ValueError):
            write_records(scan_records, "-", format="cbr")

    def test_artifact_is_much_smaller(self, scan_records, tmp_path):
        jsonl_path = tmp_path / "art.jsonl"
        cbr_path = tmp_path / "art.cbr"
        write_records(scan_records, str(jsonl_path))
        write_records(scan_records, str(cbr_path))
        ratio = jsonl_path.stat().st_size / cbr_path.stat().st_size
        assert ratio >= 4.0, f"cbr only {ratio:.1f}x smaller than jsonl"


class TestDomainChunks:
    @pytest.fixture(scope="class")
    def domain_dataset(self, tiny_population):
        return Scanner(tiny_population, ScanConfig(qlog_sample_rate=0.25)).scan(
            week_label="cw20-2023", ip_version=4, domains=tiny_population.domains[:300]
        )

    @staticmethod
    def encode_domains(dataset, chunk_records: int = 64) -> bytes:
        buffer = io.BytesIO()
        writer = CbrWriter(buffer, kind=KIND_DOMAINS, chunk_records=chunk_records)
        for result in dataset.results:
            writer.write_domain_result(result)
        writer.close()
        return buffer.getvalue()

    def test_domain_round_trip_preserves_qlog(self, domain_dataset):
        """Checkpoint shards must round trip *everything* — including
        sampled qlog documents, which plain artifacts drop."""
        assert any(r.qlog is not None for r in domain_dataset.connection_records())
        reader = CbrReader(io.BytesIO(self.encode_domains(domain_dataset)))
        decoded = [d for batch in reader.domain_batches() for d in batch]
        assert [d.name for d in decoded] == [
            r.domain.name for r in domain_dataset.results
        ]
        for got, want in zip(decoded, domain_dataset.results):
            assert got.resolved == want.resolved
            assert got.quic_support == want.quic_support
            assert got.resolved_ip == want.resolved_ip
            assert got.failure == want.failure
            assert got.connections == want.connections

    def test_domain_chunks_also_read_as_records(self, domain_dataset):
        """record_batches on a KIND_DOMAINS file yields the flat records,
        so ``repro analyze`` accepts merged checkpoint artifacts."""
        decoded = decode(self.encode_domains(domain_dataset))
        assert decoded == artifact_view(domain_dataset.connection_records())


class TestCliIdentity:
    @pytest.fixture(scope="class")
    def artifact_pair(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-cbr")
        jsonl_path = directory / "dataset.jsonl"
        cbr_path = directory / "dataset.cbr"
        base = ["scan", "--czds", "400", "--toplist", "80", "--seed", "33"]
        assert main(base + ["--out", str(jsonl_path)]) == 0
        assert main(base + ["--out", str(cbr_path)]) == 0
        return jsonl_path, cbr_path

    def test_analyze_output_identical_across_formats(self, artifact_pair, capsys):
        jsonl_path, cbr_path = artifact_pair
        assert main(["analyze", str(jsonl_path)]) == 0
        from_jsonl = capsys.readouterr().out
        assert main(["analyze", str(cbr_path)]) == 0
        from_cbr = capsys.readouterr().out
        assert "AS organizations" in from_jsonl
        assert from_cbr == from_jsonl

    def test_convert_round_trip_bytes(self, artifact_pair, tmp_path, capsys):
        jsonl_path, cbr_path = artifact_pair
        back = tmp_path / "back.jsonl"
        again = tmp_path / "again.cbr"
        assert main(["convert", str(cbr_path), str(back)]) == 0
        assert back.read_bytes() == jsonl_path.read_bytes()
        assert main(["convert", str(jsonl_path), str(again)]) == 0
        assert again.read_bytes() == cbr_path.read_bytes()
        capsys.readouterr()

    def test_scan_artifact_format_flag_overrides_extension(self, tmp_path, capsys):
        out = tmp_path / "dataset.dat"
        code = main(
            [
                "scan", "--czds", "300", "--toplist", "50", "--seed", "7",
                "--out", str(out), "--artifact-format", "cbr",
            ]
        )
        assert code == 0
        assert out.read_bytes()[: len(CBR_MAGIC)] == CBR_MAGIC
        capsys.readouterr()


def encode_v1(records, chunk_records: int = 128) -> bytes:
    """A true footer-schema-1 artifact, as written before zone maps."""
    buffer = io.BytesIO()
    writer = CbrWriter(buffer, chunk_records=chunk_records, compat_v1=True)
    writer.write_records(records)
    writer.close()
    return buffer.getvalue()


class TestZoneMaps:
    def test_footer_carries_one_zone_per_chunk(self, scan_records):
        footer = read_footer(io.BytesIO(encode(scan_records, chunk_records=16)))
        assert footer["schema"] == FOOTER_SCHEMA
        zones = footer["zones"]
        assert len(zones) == len(footer["chunks"])
        for zone in zones:
            assert set(zone) == {"w", "t", "p", "f", "b", "e", "d"}
        # Every record of this scan is week-stamped, so every envelope
        # is the single scanned week.
        serial = week_serial("cw20-2023")
        assert all(zone["w"] == [serial, serial] for zone in zones)

    def test_bloom_has_no_false_negatives(self, scan_records):
        footer = read_footer(io.BytesIO(encode(scan_records, chunk_records=16)))
        zones = footer["zones"]
        for ordinal, chunk_records in enumerate(
            _chunk_slices(scan_records, 16)
        ):
            bloom = zones[ordinal]["d"]
            for record in chunk_records:
                assert bloom_might_contain(bloom, record.domain)

    def test_domain_index_finds_every_domain(self, scan_records):
        payload = encode(scan_records, chunk_records=16)
        reader = CbrIndexedReader(io.BytesIO(payload))
        # One row per distinct (domain, chunk) pair.
        assert reader.footer["domain_index"]["rows"] == len(
            {
                (record.domain, ordinal)
                for ordinal, chunk_records in enumerate(
                    _chunk_slices(scan_records, 16)
                )
                for record in chunk_records
            }
        )
        for ordinal, chunk_records in enumerate(
            _chunk_slices(scan_records, 16)
        ):
            for record in chunk_records:
                assert ordinal in reader.domain_index_lookup(record.domain)

    def test_domain_index_definitive_miss(self, scan_records):
        payload = encode(scan_records, chunk_records=16)
        reader = CbrIndexedReader(io.BytesIO(payload))
        assert reader.domain_index_lookup("never-scanned.example") == []

    def test_week_column_round_trips(self, scan_records):
        decoded = decode(encode(scan_records))
        assert all(r.week == "cw20-2023" for r in decoded)
        weekless = [replace(r, qlog=None, week=None) for r in scan_records[:5]]
        assert decode(encode(weekless)) == weekless

    def test_indexed_reader_reads_exact_ordinals(self, scan_records):
        payload = encode(scan_records, chunk_records=16)
        reader = CbrIndexedReader(io.BytesIO(payload))
        batches = list(reader.read_chunks([1, 3]))
        assert batches[0] == artifact_view(scan_records[16:32])
        assert batches[1] == artifact_view(scan_records[48:64])

    def test_indexed_reader_rejects_torn_trailer(self, scan_records):
        payload = encode(scan_records)
        with pytest.raises(CbrFormatError):
            CbrIndexedReader(io.BytesIO(payload[:-4]))


def _chunk_slices(records, size):
    for start in range(0, len(records), size):
        yield records[start : start + size]


class TestFooterV1Compat:
    """Artifacts written before zone maps must keep working unchanged."""

    def test_v1_file_reads_and_round_trips(self, scan_records):
        payload = encode_v1(scan_records)
        assert payload[len(CBR_MAGIC)] == 1
        # v1 chunks have no week column, so the stamp does not survive.
        assert decode(payload) == [
            replace(r, qlog=None, week=None) for r in scan_records
        ]
        footer = read_footer(io.BytesIO(payload))
        assert footer["schema"] == 1
        assert "zones" not in footer
        assert "domain_index" not in footer

    def test_v1_file_analyzes(self, scan_records, tmp_path, capsys):
        path = tmp_path / "legacy.cbr"
        path.write_bytes(encode_v1(scan_records))
        assert main(["analyze", str(path), "--section", "versions"]) == 0
        assert "QUIC v1" in capsys.readouterr().out

    def test_v1_files_merge(self, scan_records):
        half = len(scan_records) // 2
        out = io.BytesIO()
        chunks, records = concat_frames(
            [
                io.BytesIO(encode_v1(scan_records[:half], chunk_records=16)),
                io.BytesIO(encode_v1(scan_records[half:], chunk_records=16)),
            ],
            out,
        )
        assert records == len(scan_records)
        assert decode(out.getvalue()) == [
            replace(r, qlog=None, week=None) for r in scan_records
        ]
        footer = read_footer(io.BytesIO(out.getvalue()))
        # Pre-zone-map sources merge cleanly: null zone entries (never
        # pruned) and no incomplete domain index.
        assert footer["zones"] == [None] * chunks
        assert "domain_index" not in footer


class TestConcatZoneCarry:
    def test_concat_carries_source_zones(self, scan_records):
        half = len(scan_records) // 2
        first = encode(scan_records[:half], chunk_records=16)
        second = encode(scan_records[half:], chunk_records=16)
        out = io.BytesIO()
        concat_frames([io.BytesIO(first), io.BytesIO(second)], out)
        merged = read_footer(io.BytesIO(out.getvalue()))
        zones_a = read_footer(io.BytesIO(first))["zones"]
        zones_b = read_footer(io.BytesIO(second))["zones"]
        assert merged["zones"] == zones_a + zones_b

    def test_concat_rebases_domain_index_ordinals(self, scan_records):
        half = len(scan_records) // 2
        first = encode(scan_records[:half], chunk_records=16)
        second = encode(scan_records[half:], chunk_records=16)
        out = io.BytesIO()
        concat_frames([io.BytesIO(first), io.BytesIO(second)], out)
        reader = CbrIndexedReader(io.BytesIO(out.getvalue()))
        base = len(read_footer(io.BytesIO(first))["chunks"])
        for ordinal, chunk_records in enumerate(
            _chunk_slices(artifact_view(scan_records[half:]), 16)
        ):
            for record in chunk_records:
                assert base + ordinal in reader.domain_index_lookup(
                    record.domain
                )

    def test_concat_mixed_versions_drops_index_keeps_zones(self, scan_records):
        half = len(scan_records) // 2
        first = encode(scan_records[:half], chunk_records=16)
        second = encode_v1(scan_records[half:], chunk_records=16)
        out = io.BytesIO()
        chunks, _ = concat_frames([io.BytesIO(first), io.BytesIO(second)], out)
        merged = read_footer(io.BytesIO(out.getvalue()))
        zones_a = read_footer(io.BytesIO(first))["zones"]
        assert merged["zones"] == zones_a + [None] * (chunks - len(zones_a))
        # One index-less source would make point lookups silently
        # incomplete, so the merged footer must not claim an index.
        assert "domain_index" not in merged
        assert decode(out.getvalue()) == artifact_view(scan_records[:half]) + [
            replace(r, qlog=None, week=None) for r in scan_records[half:]
        ]


class TestTolerantAnalyze:
    def test_truncated_cbr_reported_not_fatal(self, scan_records, tmp_path, capsys):
        # Small chunks guarantee the tear lands mid-chunk with intact
        # chunks before it.
        payload = encode(scan_records, chunk_records=32)
        torn = tmp_path / "torn.cbr"
        torn.write_bytes(payload[: int(len(payload) * 0.6)])
        assert main(["analyze", str(torn), "--section", "versions"]) == 0
        captured = capsys.readouterr()
        assert "1 corrupt chunks skipped" in captured.err
        assert "QUIC v1" in captured.out
