"""Discrete-event simulator, paths, and delay models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.rng import derive_rng
from repro.netsim.clock import SimClock
from repro.netsim.delays import (
    ConstantDelay,
    ExponentialDelay,
    LogNormalDelay,
    ParetoDelay,
    ShiftedDelay,
    UniformDelay,
)
from repro.netsim.events import Simulator
from repro.netsim.path import Path, PathProfile


class TestClock:
    def test_monotonic(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_cascading_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now_ms)))
        sim.run()
        assert seen == [2.0]

    def test_run_until_stops_at_deadline(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        executed = sim.run_until(5.0)
        assert executed == 1 and seen == [1]
        assert sim.now_ms == 5.0
        assert sim.pending_events == 1

    def test_runaway_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.001, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestPath:
    def _delivered(self, profile, n=50, seed=1):
        sim = Simulator()
        received = []
        path = Path(sim, profile, received.append, derive_rng(seed, "path"))
        for i in range(n):
            sim.schedule(float(i), lambda i=i: path.send(bytes([i % 256])))
        sim.run()
        return path, received

    def test_fifo_preserves_order(self):
        profile = PathProfile(
            propagation_delay_ms=10.0, jitter=UniformDelay(0.0, 50.0), fifo=True
        )
        _, received = self._delivered(profile)
        assert received == sorted(received, key=lambda b: b[0])

    def test_non_fifo_can_reorder(self):
        profile = PathProfile(
            propagation_delay_ms=10.0, jitter=UniformDelay(0.0, 50.0), fifo=False
        )
        _, received = self._delivered(profile, n=100)
        assert received != sorted(received, key=lambda b: b[0])

    def test_loss_drops_packets(self):
        profile = PathProfile(propagation_delay_ms=1.0, loss_probability=0.5)
        path, received = self._delivered(profile, n=400)
        assert path.stats.lost + path.stats.delivered == path.stats.sent == 400
        assert 100 < path.stats.lost < 300

    def test_no_loss_by_default(self):
        path, received = self._delivered(PathProfile(), n=50)
        assert path.stats.lost == 0 and len(received) == 50

    def test_reorder_event_escapes_fifo(self):
        profile = PathProfile(
            propagation_delay_ms=5.0,
            jitter=ConstantDelay(0.0),
            reorder_probability=0.2,
            reorder_extra_delay=ConstantDelay(10.0),
            fifo=True,
        )
        path, received = self._delivered(profile, n=200)
        assert path.stats.reordered > 0
        assert received != sorted(received, key=lambda b: b[0])

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            PathProfile(loss_probability=1.5)
        with pytest.raises(ValueError):
            PathProfile(propagation_delay_ms=-1.0)


class TestDelayModels:
    def test_constant(self, rng):
        assert ConstantDelay(3.0).sample(rng) == 3.0
        assert ConstantDelay(3.0).mean_ms() == 3.0

    def test_uniform_bounds(self, rng):
        model = UniformDelay(2.0, 4.0)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(2.0 <= s <= 4.0 for s in samples)
        assert model.mean_ms() == 3.0

    def test_lognormal_median_and_mean(self, rng):
        model = LogNormalDelay(median_ms=50.0, sigma=0.8)
        samples = sorted(model.sample(rng) for _ in range(4000))
        median = samples[len(samples) // 2]
        assert 40.0 < median < 62.0
        assert model.mean_ms() > 50.0  # heavy right tail

    def test_exponential_mean(self, rng):
        model = ExponentialDelay(mean_value_ms=20.0)
        mean = sum(model.sample(rng) for _ in range(4000)) / 4000
        assert 17.0 < mean < 23.0

    def test_pareto_minimum_and_mean(self, rng):
        model = ParetoDelay(minimum_ms=5.0, alpha=3.0)
        samples = [model.sample(rng) for _ in range(1000)]
        assert all(s >= 5.0 for s in samples)
        assert model.mean_ms() == pytest.approx(7.5)

    def test_shifted(self, rng):
        model = ShiftedDelay(offset_ms=10.0, base=ConstantDelay(1.0))
        assert model.sample(rng) == 11.0
        assert model.mean_ms() == 11.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(5.0, 1.0)
        with pytest.raises(ValueError):
            ParetoDelay(1.0, 0.9)
        with pytest.raises(ValueError):
            LogNormalDelay(0.0, 1.0)


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40)
)
def test_simulator_executes_all_events_property(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    executed = sim.run()
    assert executed == len(delays)
    assert sorted(fired) == fired  # time order
