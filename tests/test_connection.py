"""End-to-end QUIC endpoint behaviour over simulated paths."""

import pytest

from repro._util.rng import derive_rng
from repro.core.observer import observe_recorder
from repro.core.spin import SpinPolicy
from repro.netsim.delays import ConstantDelay, UniformDelay
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.web.http3 import ResponsePlan, run_exchange

RTT_MS = 40.0


def fetch(
    plan=None,
    client_policy=SpinPolicy.SPIN,
    server_policy=SpinPolicy.SPIN,
    loss=0.0,
    seed=1,
    client_config=None,
    server_config=None,
    jitter=None,
):
    plan = plan or ResponsePlan(
        server_header="LiteSpeed", think_time_ms=30.0, write_sizes=(30_000,)
    )
    profile = PathProfile(
        propagation_delay_ms=RTT_MS / 2,
        jitter=jitter or ConstantDelay(0.0),
        loss_probability=loss,
    )
    return run_exchange(
        "www.example.com",
        plan,
        client_policy,
        server_policy,
        profile,
        profile,
        derive_rng(seed, "test-exchange"),
        client_config=client_config,
        server_config=server_config,
    )


class TestHandshakeAndTransfer:
    def test_successful_fetch(self):
        result = fetch()
        assert result.success
        assert result.status == 200
        assert result.server_header == "LiteSpeed"
        assert result.body_bytes == 30_000
        assert result.client.handshake_confirmed
        assert result.server.handshake_confirmed

    def test_stack_rtt_close_to_path_rtt(self):
        result = fetch()
        rtts = result.recorder.stack_rtts_ms()
        assert len(rtts) >= 2  # handshake + request samples
        assert all(RTT_MS - 1.0 <= rtt <= RTT_MS + 30.0 for rtt in rtts)

    def test_client_records_handshake_packets(self):
        result = fetch()
        types = {event.packet_type for event in result.recorder.received}
        assert {"initial", "handshake", "1RTT"} <= types

    def test_empty_response_body(self):
        plan = ResponsePlan(server_header="nginx", write_sizes=(1,))
        result = fetch(plan=plan)
        assert result.success
        assert result.body_bytes == 1


class TestSpinSignal:
    def test_spinning_connection_shows_both_values(self):
        result = fetch()
        observation = observe_recorder(result.recorder)
        assert observation.spins

    def test_spin_rtt_tracks_path_rtt_for_static_pages(self):
        plan = ResponsePlan(
            server_header="LiteSpeed", think_time_ms=10.0, write_sizes=(120_000,)
        )
        result = fetch(plan=plan)
        observation = observe_recorder(result.recorder)
        assert len(observation.rtts_received_ms) >= 2
        # During the congestion-window-paced transfer the spin period is
        # one RTT plus small dispatch overheads.
        for sample in observation.rtts_received_ms:
            assert RTT_MS * 0.9 <= sample <= RTT_MS * 2.0

    def test_dribbling_server_inflates_spin_rtt(self):
        plan = ResponsePlan(
            server_header="LiteSpeed",
            think_time_ms=30.0,
            write_gaps_ms=(0.0, 300.0, 300.0),
            write_sizes=(11_000, 11_000, 11_000),
        )
        result = fetch(plan=plan)
        observation = observe_recorder(result.recorder)
        assert max(observation.rtts_received_ms) >= 250.0

    def test_server_always_zero_never_flips(self):
        result = fetch(server_policy=SpinPolicy.ALWAYS_ZERO)
        observation = observe_recorder(result.recorder)
        assert observation.all_zero

    def test_server_always_one_is_constant_one(self):
        result = fetch(server_policy=SpinPolicy.ALWAYS_ONE)
        observation = observe_recorder(result.recorder)
        assert observation.all_one

    def test_per_packet_grease_triggers_grease_filter(self):
        from repro.core.classify import SpinBehaviour, classify_connection

        plan = ResponsePlan(
            server_header="x", think_time_ms=20.0, write_sizes=(60_000,)
        )
        result = fetch(plan=plan, server_policy=SpinPolicy.GREASE_PER_PACKET, seed=3)
        observation = observe_recorder(result.recorder)
        behaviour = classify_connection(observation, result.recorder.stack_rtts_ms())
        assert behaviour is SpinBehaviour.GREASE

    def test_per_connection_grease_looks_constant(self):
        behaviours = set()
        for seed in range(6):
            result = fetch(server_policy=SpinPolicy.GREASE_PER_CONNECTION, seed=seed)
            observation = observe_recorder(result.recorder)
            assert not observation.spins
            behaviours.add(observation.all_one)
        assert behaviours == {False, True}  # both constants appear across conns


class TestLossRecovery:
    def test_completes_under_moderate_loss(self):
        completed = 0
        for seed in range(8):
            result = fetch(loss=0.05, seed=seed)
            completed += result.success
        assert completed >= 7

    def test_retransmissions_are_new_packet_numbers(self):
        result = fetch(loss=0.08, seed=5)
        pns = [e.packet_number for e in result.recorder.sent if e.packet_type == "1RTT"]
        assert len(pns) == len(set(pns))

    def test_total_loss_fails_gracefully(self):
        result = fetch(loss=0.97, seed=2)
        assert not result.success
        assert result.failure_reason


class TestVecEndToEnd:
    def test_vec_marks_arrive_when_enabled(self):
        config = ConnectionConfig(enable_vec=True)
        plan = ResponsePlan(
            server_header="x", think_time_ms=10.0, write_sizes=(120_000,)
        )
        result = fetch(plan=plan, client_config=config, server_config=config)
        vec_values = {e.vec for e in result.recorder.received if e.spin_bit is not None}
        assert 3 in vec_values  # saturated valid edges observed
        assert 0 in vec_values  # non-edge packets

    def test_vec_observer_measures_rtt(self):
        from repro.core.vec import VecObserver

        config = ConnectionConfig(enable_vec=True)
        plan = ResponsePlan(
            server_header="x", think_time_ms=10.0, write_sizes=(160_000,)
        )
        result = fetch(plan=plan, client_config=config, server_config=config)
        observer = VecObserver(threshold=3)
        for event in result.recorder.received_short_header_packets():
            observer.on_packet(event.time_ms, event.vec)
        rtts = observer.rtts_ms()
        assert rtts, "expected at least one VEC-validated measurement"
        assert all(sample >= RTT_MS * 0.9 for sample in rtts)

    def test_reserved_bits_zero_without_vec(self):
        result = fetch()
        assert all(
            event.vec == 0
            for event in result.recorder.received
            if event.spin_bit is not None
        )


class TestKeyUpdate:
    def test_key_phase_flips_but_spin_unaffected(self):
        """RFC 9001 key updates toggle the key-phase bit; the spin
        observer must not mistake them for spin edges."""
        plan = ResponsePlan(
            server_header="x", think_time_ms=10.0, write_sizes=(120_000,)
        )
        result = fetch(
            plan=plan,
            server_config=ConnectionConfig(key_update_interval_packets=20),
        )
        assert result.success
        # Key-phase transitions were observed on the wire ...
        # (the recorder does not log the bit, so parse sent datagrams
        # via a wire observer instead)
        from repro.core.wire_observer import WireObserver

        plain = fetch(plan=plan)
        observation_updated = observe_recorder(result.recorder)
        observation_plain = observe_recorder(plain.recorder)
        # ... while the spin RTT series is statistically unchanged.
        assert len(observation_updated.rtts_received_ms) == len(
            observation_plain.rtts_received_ms
        )

    def test_key_phase_actually_updates(self):
        """The server's key phase flips once it passes the interval."""
        plan = ResponsePlan(
            server_header="x", think_time_ms=10.0, write_sizes=(90_000,)
        )
        result = fetch(
            plan=plan,
            server_config=ConnectionConfig(key_update_interval_packets=15),
        )
        assert result.success
        assert result.server._app_packets_sent > 15
        assert result.server._key_phase is True

    def test_no_key_update_by_default(self):
        result = fetch()
        assert result.server._key_phase is False
