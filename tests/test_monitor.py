"""The streaming monitoring service: mux, windows, pipeline, snapshots."""

import io
import json

import pytest

from repro.cli import main
from repro.core.flow_table import SpinFlowTable
from repro.monitor import (
    LogHistogram,
    MonitorConfig,
    MonitorPipeline,
    TrafficConfig,
    TrafficMux,
    WindowAggregator,
    WindowConfig,
    run_monitor,
)

SMALL = TrafficConfig(flows=25, seed=7, arrival_window_ms=1_500.0)


@pytest.fixture(scope="module")
def small_stream():
    return list(TrafficMux(SMALL).stream())


class TestTrafficMux:
    def test_stream_is_time_ordered(self, small_stream):
        times = [tap.time_ms for tap in small_stream]
        assert times == sorted(times)

    def test_stream_interleaves_flows(self, small_stream):
        """The tap sees many flows, and they genuinely interleave."""
        indices = {tap.flow_index for tap in small_stream}
        assert len(indices) == SMALL.flows
        switches = sum(
            1
            for a, b in zip(small_stream, small_stream[1:])
            if a.flow_index != b.flow_index
        )
        assert switches > len(indices)  # not one-flow-at-a-time blocks

    def test_stream_deterministic(self, small_stream):
        again = list(TrafficMux(SMALL).stream())
        assert again == small_stream

    def test_specs_cover_configured_mixes(self):
        specs = TrafficMux(TrafficConfig(flows=200, seed=1)).specs
        assert len({spec.stack_name for spec in specs}) >= 5
        assert len({spec.path_class for spec in specs}) >= 3
        starts = [spec.start_ms for spec in specs]
        assert max(starts) - min(starts) > 1_000.0

    def test_replay_single_matches_interleaved_slice(self, small_stream):
        """Isolated re-simulation reproduces a flow's slice of the
        merged stream exactly — same payloads at the same tap times."""
        for index in (0, 7, 24):
            slice_ = [tap for tap in small_stream if tap.flow_index == index]
            assert TrafficMux(SMALL).replay_single(index) == slice_

    def test_flow_observations_match_isolated_replay(self, small_stream):
        """The ISSUE's equivalence property: feeding the interleaved
        stream through a flow table yields the same per-flow spin
        observation as replaying each flow separately."""
        merged = SpinFlowTable(short_dcid_length=8, max_flows=SMALL.flows)
        for tap in small_stream:
            merged.on_server_datagram(tap.time_ms, tap.data)
        merged_obs = merged.observations()

        mux = TrafficMux(SMALL)
        isolated_obs = {}
        for index in range(SMALL.flows):
            table = SpinFlowTable(short_dcid_length=8)
            for tap in mux.replay_single(index):
                table.on_server_datagram(tap.time_ms, tap.data)
            isolated_obs.update(table.observations())

        assert set(merged_obs) == set(isolated_obs)
        for key, observation in isolated_obs.items():
            other = merged_obs[key]
            assert other.rtts_received_ms == observation.rtts_received_ms
            assert other.values_seen == observation.values_seen
            assert other.packets_seen == observation.packets_seen

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(flows=0)
        with pytest.raises(ValueError):
            TrafficConfig(drain_window_ms=0.0)


class TestLogHistogram:
    def test_exact_stats_and_percentile_accuracy(self):
        hist = LogHistogram(0.1, 60_000.0, bins_per_decade=32)
        values = [float(v) for v in range(1, 1001)]  # 1..1000 ms
        for value in values:
            hist.add(value)
        assert hist.count == 1000
        assert hist.mean == pytest.approx(500.5)
        assert hist.min_seen == 1.0
        assert hist.max_seen == 1000.0
        # Percentiles within the bin-ratio relative error (~±3.7 %).
        for q, expected in ((50.0, 500.0), (90.0, 900.0), (99.0, 990.0)):
            assert hist.percentile(q) == pytest.approx(expected, rel=0.05)

    def test_out_of_range_values_kept(self):
        hist = LogHistogram(1.0, 100.0)
        hist.add(0.01)
        hist.add(5_000.0)
        assert hist.count == 2
        assert hist.underflow == 1 and hist.overflow == 1
        assert hist.percentile(0.0) == 0.01
        assert hist.percentile(100.0) == 5_000.0

    def test_merge_equals_combined(self):
        a, b, combined = (LogHistogram() for _ in range(3))
        for value in (1.0, 10.0, 25.0):
            a.add(value)
            combined.add(value)
        for value in (3.0, 300.0):
            b.add(value)
            combined.add(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.summary() == combined.summary()

    def test_merge_rejects_different_binning(self):
        with pytest.raises(ValueError):
            LogHistogram(0.1, 100.0).merge(LogHistogram(0.1, 200.0))

    def test_empty_summary(self):
        assert LogHistogram().summary() == {"count": 0}


class TestWindowAggregator:
    def test_tumbling_windows_aligned_and_complete(self):
        agg = WindowAggregator(WindowConfig(window_ms=100.0))
        snapshots = []
        for time_ms in (10.0, 50.0, 120.0, 130.0, 450.0):
            snapshots.extend(agg.roll(time_ms, {"active_flows": 0}))
            agg.window_for(time_ms).datagrams += 1
            agg.record_sample(time_ms, 42.0)
        snapshots.extend(agg.flush({"active_flows": 0}))
        assert [s.index for s in snapshots] == [0, 1, 4]  # empty skipped
        assert [(s.start_ms, s.end_ms) for s in snapshots] == [
            (0.0, 100.0),
            (100.0, 200.0),
            (400.0, 500.0),
        ]
        assert sum(s.datagrams for s in snapshots) == 5
        assert sum(s.samples["count"] for s in snapshots) == 5
        assert agg.lifetime.count == 5

    def test_sliding_view_merges_recent_windows(self):
        agg = WindowAggregator(WindowConfig(window_ms=100.0, slide_windows=3))
        snapshots = []
        for time_ms in (10.0, 110.0, 210.0, 310.0):
            snapshots.extend(agg.roll(time_ms, {}))
            agg.window_for(time_ms).datagrams += 1
            agg.record_sample(time_ms, 10.0)
        snapshots.extend(agg.flush({}))
        last = snapshots[-1]
        assert last.sliding is not None
        assert last.sliding["windows"] == 3
        assert last.sliding["datagrams"] == 3
        assert last.sliding["span_ms"] == 300.0
        assert last.sliding["samples"]["count"] == 3


class TestMonitorPipeline:
    def test_bounded_memory_under_load(self, small_stream):
        """Table bounded at max_flows, no retired-flow accumulation,
        no per-sample buffers in the streaming observers."""
        config = MonitorConfig(max_flows=8)
        pipeline = MonitorPipeline(config)
        for tap in small_stream:
            pipeline.process(tap.time_ms, tap.data)
            assert len(pipeline.table.flows) <= 8
        summary = pipeline.finish()
        assert pipeline.table.evicted == []  # retain_retired=False
        assert summary.peak_flows <= 8
        assert summary.flows_evicted > 0
        for flow in pipeline.table.flows.values():
            assert flow._observer.take_samples() == []

    def test_summary_consistent_with_windows(self, small_stream):
        snapshots = []
        pipeline = MonitorPipeline(on_snapshot=snapshots.append)
        summary = pipeline.process_stream(iter(small_stream))
        assert summary.windows == len(snapshots)
        assert sum(s.datagrams for s in snapshots) == summary.datagrams
        assert sum(s.packets for s in snapshots) == summary.packets
        assert (
            sum(s.samples["count"] for s in snapshots)
            == summary.samples["count"]
        )
        assert summary.datagrams == len(small_stream)
        assert summary.flows_created == SMALL.flows
        assert summary.spin_flows > 0
        assert summary.duration_ms == small_stream[-1].time_ms

    def test_snapshots_emitted_during_stream(self, small_stream):
        """Streaming, not batch: snapshots arrive before the end."""
        seen_at = []
        pipeline = MonitorPipeline(
            MonitorConfig(window=WindowConfig(window_ms=200.0)),
            on_snapshot=lambda s: seen_at.append(s.end_ms),
        )
        emitted_early = False
        for position, tap in enumerate(small_stream):
            pipeline.process(tap.time_ms, tap.data)
            if seen_at and position < len(small_stream) - 1:
                emitted_early = True
        assert emitted_early


class TestSnapshots:
    def test_run_monitor_jsonl_deterministic(self):
        first, second = io.StringIO(), io.StringIO()
        for out in (first, second):
            run_monitor(SMALL, MonitorConfig(), out=out)
        assert first.getvalue() == second.getvalue()
        lines = [json.loads(line) for line in first.getvalue().splitlines()]
        assert all(line["schema"] == 1 for line in lines)
        assert [line["type"] for line in lines].count("summary") == 1
        windows = [line for line in lines if line["type"] == "window"]
        assert windows
        assert {"datagrams", "flows", "samples", "table"} <= set(windows[0])

    def test_cli_monitor_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "snapshots.jsonl"
        args = [
            "monitor",
            "--flows", "15",
            "--seed", "5",
            "--arrival-window-ms", "800",
            "--out", str(out),
        ]
        assert main(args) == 0
        capsys.readouterr()
        lines = out.read_text().strip().splitlines()
        summary = json.loads(lines[-1])
        assert summary["type"] == "summary"
        assert summary["flows"]["created"] == 15
        # Second run is byte-identical.
        out2 = tmp_path / "snapshots2.jsonl"
        assert main(args[:-1] + [str(out2)]) == 0
        assert out2.read_text() == out.read_text()

    def test_cli_monitor_rejects_bad_config(self, capsys):
        with pytest.raises(SystemExit):
            main(["monitor", "--flows", "0", "--out", "-"])
