"""Predicate-pushdown query planning over zone-mapped cbr artifacts.

The planner's contract is *pruning never changes results*: for any
predicate, running over the zone-pruned chunk set plus the residual
filter must be byte-identical to brute force (decode everything, filter
in memory).  Seeded random predicates probe that equivalence, and the
degraded paths — bloom false positives, footer-less files, torn
trailers, empty artifacts, unicode domains — must stay full scans, not
wrong answers.
"""

from __future__ import annotations

import io
import json
import random
from dataclasses import replace

import pytest

from conftest import make_connection_record
from repro.analysis.query import (
    And,
    Between,
    Eq,
    In,
    Present,
    QueryError,
    QueryStats,
    filter_batch,
    parse_where,
    plan_chunks,
)
from repro.artifacts import open_query_source, write_records
from repro.artifacts.cbr import read_footer, week_serial, write_records_cbr
from repro.cli import main
from repro.core.classify import SpinBehaviour
from repro.faults.taxonomy import FailureKind

CHUNK = 8

WEEKS = ["cw20-2023", "cw21-2023", "cw22-2023", "cw23-2023"]
PROVIDERS = ["cloudflare", "google", "hostinger", "other-hosting"]


def build_records(count: int = 96) -> list:
    """A deterministic multi-week, multi-provider record population."""
    rng = random.Random(4242)
    records = []
    for i in range(count):
        week = WEEKS[min(i * len(WEEKS) // count, len(WEEKS) - 1)]
        provider = PROVIDERS[i % len(PROVIDERS)]
        behaviour = (
            SpinBehaviour.SPIN if i % 3 else SpinBehaviour.ALL_ZERO
        )
        packets = None
        spin_rtts = None
        if behaviour is SpinBehaviour.SPIN:
            base = 100.0 * (i + 1)
            packets = [
                (base + 25.0 * j, j, bool(j % 2)) for j in range(rng.randrange(2, 7))
            ]
        else:
            spin_rtts = []
        record = make_connection_record(
            domain=f"dom{i:04d}.example",
            provider=provider,
            behaviour=behaviour,
            packets=packets,
            spin_rtts=spin_rtts,
        )
        record.week = week
        if i % 11 == 0:
            record.success = False
            record.status = None
            record.failure = (
                FailureKind.HANDSHAKE_TIMEOUT if i % 2 else FailureKind.CONNECTION_RESET
            )
        records.append(record)
    records[7] = replace(records[7], domain="bücher.example")
    records[31] = replace(records[31], domain="例え.テスト")
    return records


@pytest.fixture(scope="module")
def records():
    return build_records()


@pytest.fixture(scope="module")
def artifact(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("query") / "dataset.cbr"
    with open(path, "wb") as stream:
        write_records_cbr(records, stream, chunk_records=CHUNK)
    return path


def brute_force(records, predicate):
    return [r for r in records if predicate.matches(r)]


def query(path, predicate):
    """The full pushdown pipeline: plan, decode survivors, filter."""
    stats = QueryStats()
    with open_query_source(str(path), predicate, stats=stats) as source:
        matched = [
            record
            for batch in source.batches()
            for record in filter_batch(batch, predicate, stats)
        ]
    return matched, stats


def random_predicate(rng, records):
    kind = rng.randrange(7)
    if kind == 0:
        return Eq("domain", rng.choice(records).domain)
    if kind == 1:
        return In("provider", rng.sample(PROVIDERS, rng.randrange(1, 3)))
    if kind == 2:
        low, high = sorted(rng.sample(range(len(WEEKS)), 2))
        return Between("week", WEEKS[low], WEEKS[high])
    if kind == 3:
        return Present("failure")
    if kind == 4:
        return Eq("behaviour", rng.choice(["spin", "all_zero"]))
    if kind == 5:
        return Between("edges", rng.randrange(0, 3), rng.randrange(3, 8))
    return And(
        [random_predicate(rng, records), random_predicate(rng, records)]
    )


class TestPruningCorrectness:
    def test_seeded_random_predicates_byte_identical(self, records, artifact):
        """Pruned output must equal brute force — bytes, not just sets."""
        rng = random.Random(20230520)
        for _ in range(60):
            predicate = random_predicate(rng, records)
            matched, stats = query(artifact, predicate)
            expected = brute_force(records, predicate)
            assert matched == expected, repr(predicate)
            got = io.BytesIO()
            want = io.BytesIO()
            write_records_cbr(matched, got)
            write_records_cbr(expected, want)
            assert got.getvalue() == want.getvalue(), repr(predicate)
            assert stats.records_matched == len(expected)
            assert stats.chunks_selected <= stats.chunks_total

    def test_bloom_false_positives_never_drop_records(self, records, artifact):
        """Every stored domain must come back complete — the bloom and
        the domain index may only ever *add* chunks, never hide one."""
        for record in records:
            matched, _ = query(artifact, Eq("domain", record.domain))
            assert matched == brute_force(records, Eq("domain", record.domain))

    def test_absent_domain_matches_nothing(self, artifact):
        matched, stats = query(artifact, Eq("domain", "nosuch.example"))
        assert matched == []
        # The complete domain index answers a miss without decoding
        # anything (modulo 40-bit hash collisions).
        assert stats.chunks_selected <= 1

    def test_unicode_domains(self, records, artifact):
        for name in ("bücher.example", "例え.テスト"):
            matched, _ = query(artifact, Eq("domain", name))
            assert [r.domain for r in matched] == [name]

    def test_selective_week_predicate_prunes(self, records, artifact):
        predicate = Eq("week", WEEKS[-1])
        matched, stats = query(artifact, predicate)
        assert matched == brute_force(records, predicate)
        assert 0 < stats.chunks_selected < stats.chunks_total
        assert stats.chunks_pruned > 0

    def test_empty_artifact(self, tmp_path):
        path = tmp_path / "empty.cbr"
        with open(path, "wb") as stream:
            write_records_cbr([], stream)
        matched, stats = query(path, Eq("provider", "cloudflare"))
        assert matched == []
        assert stats.chunks_total == 0


class TestDegradedPaths:
    def test_torn_trailer_falls_back_to_full_scan(self, records, artifact):
        """The bugfix: a footer-less file is a full scan, not a crash."""
        torn = artifact.with_name("torn.cbr")
        payload = artifact.read_bytes()
        torn.write_bytes(payload[: int(len(payload) * 0.8)])
        predicate = Eq("provider", "cloudflare")
        stats = QueryStats()
        with open_query_source(str(torn), predicate, stats=stats) as source:
            matched = [
                record
                for batch in source.batches()
                for record in filter_batch(batch, predicate, stats)
            ]
            survivors = source.records_read
        assert stats.chunks_pruned == 0
        assert 0 < survivors <= len(records)
        assert matched == brute_force(records[:survivors], predicate)

    def test_jsonl_dataset_full_scan(self, records, tmp_path):
        path = tmp_path / "dataset.jsonl"
        write_records(records, str(path))
        predicate = In("provider", ["google"])
        matched, stats = query(path, predicate)
        assert [r.domain for r in matched] == [
            r.domain for r in brute_force(records, predicate)
        ]
        assert stats.chunks_total == 0 and stats.chunks_pruned == 0

    def test_v1_footer_plans_full_scan(self, records, tmp_path):
        from repro.artifacts.cbr import CbrWriter

        path = tmp_path / "legacy.cbr"
        with open(path, "wb") as stream:
            writer = CbrWriter(stream, chunk_records=CHUNK, compat_v1=True)
            writer.write_records(records)
            writer.close()
        predicate = Eq("provider", "cloudflare")
        matched, stats = query(path, predicate)
        assert stats.chunks_total == stats.chunks_selected > 0
        assert [r.domain for r in matched] == [
            r.domain for r in brute_force(records, predicate)
        ]


class TestPlanner:
    def test_week_envelope_pruning(self, artifact):
        footer = read_footer(io.BytesIO(artifact.read_bytes()))
        ordinals, total = plan_chunks(footer, Eq("week", WEEKS[0]))
        assert total == len(footer["chunks"])
        assert 0 < len(ordinals) < total
        serial = week_serial(WEEKS[0])
        for ordinal in ordinals:
            low, high = footer["zones"][ordinal]["w"]
            assert low <= serial <= high

    def test_unbounded_fields_never_prune(self, artifact):
        footer = read_footer(io.BytesIO(artifact.read_bytes()))
        ordinals, total = plan_chunks(footer, Eq("status", 200))
        assert ordinals == list(range(total))

    def test_conjunction_prunes_union(self, artifact):
        footer = read_footer(io.BytesIO(artifact.read_bytes()))
        week_ordinals, _ = plan_chunks(footer, Eq("week", WEEKS[0]))
        both_ordinals, _ = plan_chunks(
            footer, And([Eq("week", WEEKS[0]), Eq("provider", "cloudflare")])
        )
        assert set(both_ordinals) <= set(week_ordinals)

    def test_null_zone_entries_are_kept(self):
        footer = {
            "chunks": [[0, 0, 0, 0], [1, 0, 0, 0]],
            "zones": [None, {"w": None, "p": ["google"]}],
        }
        ordinals, total = plan_chunks(footer, Eq("provider", "cloudflare"))
        assert ordinals == [0] and total == 2


class TestParseWhere:
    def test_grammar(self):
        predicate = parse_where(
            "week between cw20-2023 and cw21-2023 and provider in "
            "cloudflare, google and failure present"
        )
        assert isinstance(predicate, And)
        assert predicate.fields() == {"week", "provider", "failure"}

    def test_single_clause(self):
        predicate = parse_where("domain == a.example")
        assert predicate == Eq("domain", "a.example")
        assert predicate.point_domains() == {"a.example"}

    def test_numeric_coercion(self):
        assert parse_where("edges between 2 5") == Between("edges", 2, 5)
        assert parse_where("status = 200") == Eq("status", 200)
        assert parse_where("success == true") == Eq("success", True)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "frobnicate == 1",
            "provider",
            "provider ~= x",
            "provider == x and",
            "week == notaweek",
            "edges == many",
            "provider == x or domain == y",
            "behaviour between a b",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(QueryError):
            parse_where(text)


class TestCliQuery:
    @pytest.fixture(scope="class")
    def artifact_pair(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-query")
        jsonl_path = directory / "dataset.jsonl"
        cbr_path = directory / "dataset.cbr"
        base = ["scan", "--czds", "400", "--toplist", "80", "--seed", "33"]
        assert main(base + ["--out", str(jsonl_path)]) == 0
        assert main(base + ["--out", str(cbr_path)]) == 0
        return jsonl_path, cbr_path

    def test_query_domain_output_is_artifact_lines(self, artifact_pair, capsys):
        """Point-lookup output must be the artifact's own JSONL lines."""
        jsonl_path, cbr_path = artifact_pair
        lines = jsonl_path.read_text(encoding="utf-8").splitlines()
        name = json.loads(lines[len(lines) // 2])["domain"]
        assert main(["query", "domain", name, str(cbr_path)]) == 0
        captured = capsys.readouterr()
        expected = [
            line for line in lines if json.loads(line)["domain"] == name
        ]
        assert captured.out.splitlines() == expected
        # The plan line is opt-in: silent by default, stderr with --verbose.
        assert "query plan:" not in captured.err
        assert main(["query", "domain", name, str(cbr_path), "--verbose"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == expected
        assert "query plan:" in captured.err

    def test_analyze_where_identical_across_formats(self, artifact_pair, capsys):
        jsonl_path, cbr_path = artifact_pair
        where = ["--where", "provider == cloudflare", "--section", "versions"]
        assert main(["analyze", str(jsonl_path)] + where) == 0
        from_jsonl = capsys.readouterr().out
        assert main(["analyze", str(cbr_path)] + where) == 0
        from_cbr = capsys.readouterr().out
        assert from_cbr == from_jsonl

    def test_analyze_where_equals_prefiltered_dataset(
        self, artifact_pair, tmp_path, capsys
    ):
        """--where on the full artifact == plain analyze of the subset."""
        jsonl_path, cbr_path = artifact_pair
        subset = tmp_path / "subset.jsonl"
        kept = [
            line
            for line in jsonl_path.read_text(encoding="utf-8").splitlines()
            if json.loads(line)["provider"] == "cloudflare"  # jsonl-ok
        ]
        subset.write_text("".join(f"{line}\n" for line in kept), encoding="utf-8")
        assert main(["analyze", str(subset), "--section", "failures"]) == 0
        expected = capsys.readouterr().out
        code = main(
            [
                "analyze", str(cbr_path), "--section", "failures",
                "--where", "provider == cloudflare",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == expected

    def test_bad_where_is_clean_error(self, artifact_pair):
        _, cbr_path = artifact_pair
        with pytest.raises(SystemExit, match="invalid --where"):
            main(["analyze", str(cbr_path), "--where", "nope == 1"])

    def test_query_telemetry_counters(self, artifact_pair, tmp_path, capsys):
        jsonl_path, cbr_path = artifact_pair
        telemetry_dir = tmp_path / "telemetry"
        name = json.loads(
            jsonl_path.read_text(encoding="utf-8").splitlines()[0]
        )["domain"]
        code = main(
            [
                "query", "domain", name, str(cbr_path),
                "--telemetry-out", str(telemetry_dir),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(telemetry_dir)]) == 0
        summary = capsys.readouterr().out
        assert "query.chunks_total" in summary
        assert "query.chunks_pruned" in summary
        assert "query.records_scanned" in summary
