"""Additional property tests: qlog determinism, filters, schedules."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compliance import rfc_reference_shares
from repro.campaign.schedule import CalendarWeek, Campaign
from repro.core.heuristics import DynamicThresholdFilter, StaticThresholdFilter
from repro.core.observer import SpinEdge
from repro.qlog.reader import qlog_to_recorder
from repro.qlog.recorder import TraceRecorder
from repro.qlog.writer import recorder_to_qlog


@given(
    events=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6),
            st.sampled_from(["initial", "handshake", "1RTT"]),
            st.integers(min_value=0, max_value=10_000),
            st.booleans(),
            st.integers(min_value=0, max_value=2_000),
        ),
        max_size=40,
    )
)
@settings(max_examples=50)
def test_qlog_roundtrip_property(events):
    """Any recorded trace survives writer → JSON → reader unchanged."""
    recorder = TraceRecorder(odcid_hex="ab")
    for time_ms, packet_type, pn, spin, size in sorted(events):
        spin_value = spin if packet_type == "1RTT" else None
        recorder.on_packet_received(time_ms, packet_type, pn, spin_value, size)
    document = json.loads(json.dumps(recorder_to_qlog(recorder)))
    recovered = qlog_to_recorder(document)
    assert recovered.received == recorder.received


@given(
    samples=st.lists(st.floats(min_value=0.0, max_value=1e4), max_size=50),
    floor=st.floats(min_value=0.0, max_value=100.0),
)
def test_static_filter_properties(samples, floor):
    """The static filter is idempotent, order-preserving, and exact."""
    filt = StaticThresholdFilter(min_rtt_ms=floor)
    once = filt.filter_rtts(samples)
    assert filt.filter_rtts(once) == once  # idempotent
    assert all(sample >= floor for sample in once)
    assert once == [sample for sample in samples if sample >= floor]


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e5), min_size=0, max_size=40
    ).map(sorted),
    fraction=st.floats(min_value=0.05, max_value=0.9),
)
def test_hold_time_filter_properties(times, fraction):
    """The hold-time filter never adds edges and keeps the first one."""
    edges = [SpinEdge(t, i, i % 2 == 0) for i, t in enumerate(times)]
    filt = DynamicThresholdFilter(fraction=fraction)
    accepted = filt.filter_edges(edges)
    assert len(accepted) <= len(edges)
    if edges:
        assert accepted[0] == edges[0]
    accepted_times = [edge.time_ms for edge in accepted]
    assert accepted_times == sorted(accepted_times)


@given(
    n=st.integers(min_value=2, max_value=20),
    disable=st.sampled_from([4, 8, 16, 32]),
)
def test_rfc_reference_shares_property(n, disable):
    shares = rfc_reference_shares(n, disable)
    assert len(shares) == n
    assert sum(shares) == pytest.approx(1.0)
    assert all(share >= 0 for share in shares)
    # More aggressive disabling shifts mass away from "all weeks".
    if disable >= 8:
        assert shares[-1] >= rfc_reference_shares(n, disable // 2)[-1]


@given(
    start_week=st.integers(min_value=1, max_value=50),
    length=st.integers(min_value=1, max_value=80),
    n=st.integers(min_value=2, max_value=12),
)
def test_campaign_week_selection_property(start_week, length, n):
    first = CalendarWeek(2022, start_week)
    last = first
    for _ in range(length):
        last = last.next()
    campaign = Campaign(first=first, last=last)
    weeks = campaign.weeks()
    assert weeks[0] == first and weeks[-1] == last
    assert all(a < b for a, b in zip(weeks, weeks[1:]))
    if n <= len(weeks):
        selected = campaign.select_spread_weeks(n)
        assert len(selected) == n
        assert selected[0] == first and selected[-1] == last
        assert all(a < b for a, b in zip(selected, selected[1:]))
        # Labels roundtrip for every selected week.
        for week in selected:
            assert CalendarWeek.from_label(week.label) == week
