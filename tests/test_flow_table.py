"""The flow-table observer: demultiplexing concurrent connections."""

import pytest

from repro.core.flow_table import SpinFlowTable
from repro.quic.connection_id import ConnectionId
from repro.quic.datagram import QuicPacket, encode_datagram
from repro.quic.frames import PingFrame
from repro.quic.packet import ShortHeader


def datagram(cid: bytes, pn: int, spin: bool) -> bytes:
    packet = QuicPacket(
        header=ShortHeader(
            destination_cid=ConnectionId(cid), packet_number=pn, spin_bit=spin
        ),
        frames=(PingFrame(),),
    )
    return encode_datagram([packet])


CID_A = bytes(range(8))
CID_B = bytes(range(8, 16))


class TestDemultiplexing:
    def test_interleaved_flows_measured_independently(self):
        """Two connections with different RTTs, packets interleaved."""
        table = SpinFlowTable(short_dcid_length=8)
        events = []
        # Flow A: 40 ms spin period; flow B: 100 ms period.
        for cycle in range(4):
            events.append((cycle * 40.0, CID_A, cycle, cycle % 2 == 1))
            events.append((cycle * 100.0, CID_B, cycle, cycle % 2 == 1))
        for time_ms, cid, pn, spin in sorted(events):
            table.on_server_datagram(time_ms, datagram(cid, pn, spin))

        observations = table.observations()
        key_a = ConnectionId(CID_A).hex
        key_b = ConnectionId(CID_B).hex
        assert observations[key_a].rtts_received_ms == pytest.approx([40.0, 40.0])
        assert observations[key_b].rtts_received_ms == pytest.approx([100.0, 100.0])

    def test_per_flow_packet_number_state(self):
        """Packet-number reconstruction must not leak across flows."""
        table = SpinFlowTable(short_dcid_length=8)
        table.on_server_datagram(0.0, datagram(CID_A, 250, False))
        table.on_server_datagram(1.0, datagram(CID_B, 3, True))
        flows = table.flows
        assert flows[ConnectionId(CID_A).hex]._largest_pn == 250
        assert flows[ConnectionId(CID_B).hex]._largest_pn == 3

    def test_long_headers_ignored(self):
        from repro.quic.frames import CryptoFrame
        from repro.quic.packet import LongHeader, LongPacketType

        table = SpinFlowTable(short_dcid_length=8)
        packet = QuicPacket(
            header=LongHeader(
                long_type=LongPacketType.INITIAL,
                version=1,
                destination_cid=ConnectionId(CID_A),
                source_cid=ConnectionId(CID_B),
            ),
            frames=(CryptoFrame(0, b"hello"),),
        )
        table.on_server_datagram(0.0, encode_datagram([packet]))
        assert table.flows == {}


class TestTableManagement:
    def test_idle_flows_evicted(self):
        table = SpinFlowTable(short_dcid_length=8, idle_timeout_ms=100.0)
        table.on_server_datagram(0.0, datagram(CID_A, 0, False))
        table.on_server_datagram(500.0, datagram(CID_B, 0, False))
        assert ConnectionId(CID_A).hex not in table.flows
        assert len(table.evicted) == 1
        assert table.evicted[0].flow_key == ConnectionId(CID_A).hex

    def test_capacity_eviction_drops_lru(self):
        table = SpinFlowTable(short_dcid_length=8, max_flows=2)
        cids = [bytes([i] * 8) for i in range(3)]
        for index, cid in enumerate(cids):
            table.on_server_datagram(float(index), datagram(cid, 0, False))
        assert len(table.flows) == 2
        assert table.evicted[0].flow_key == ConnectionId(cids[0]).hex

    def test_all_flows_includes_evicted(self):
        table = SpinFlowTable(short_dcid_length=8, max_flows=1)
        table.on_server_datagram(0.0, datagram(CID_A, 0, False))
        table.on_server_datagram(1.0, datagram(CID_B, 0, True))
        assert [flow.flow_key for flow in table.all_flows()] == [
            ConnectionId(CID_A).hex,
            ConnectionId(CID_B).hex,
        ]

    def test_garbage_counted(self):
        table = SpinFlowTable()
        table.on_server_datagram(0.0, b"\x01\x02")
        assert table.parse_errors == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SpinFlowTable(max_flows=0)
        with pytest.raises(ValueError):
            SpinFlowTable(idle_timeout_ms=0.0)


class TestChurn:
    """Bounded-table behaviour under flow churn (LRU, expiry, overflow)."""

    def test_lru_eviction_respects_recency(self):
        """A flow touched recently survives even if it was created first."""
        table = SpinFlowTable(short_dcid_length=8, max_flows=2)
        cid_a, cid_b, cid_c = (bytes([i] * 8) for i in range(3))
        table.on_server_datagram(0.0, datagram(cid_a, 0, False))
        table.on_server_datagram(1.0, datagram(cid_b, 0, False))
        table.on_server_datagram(2.0, datagram(cid_a, 1, False))  # refresh A
        table.on_server_datagram(3.0, datagram(cid_c, 0, False))
        assert [f.flow_key for f in table.evicted] == [ConnectionId(cid_b).hex]
        assert ConnectionId(cid_a).hex in table.flows
        assert table.stats.flows_evicted == 1

    def test_eviction_order_under_sustained_overflow(self):
        """Continuous churn always evicts the least recently seen flow."""
        table = SpinFlowTable(short_dcid_length=8, max_flows=4)
        cids = [bytes([i] * 8) for i in range(10)]
        for index, cid in enumerate(cids):
            table.on_server_datagram(float(index), datagram(cid, 0, False))
        assert [f.flow_key for f in table.evicted] == [
            ConnectionId(cid).hex for cid in cids[:6]
        ]
        assert len(table.flows) == 4
        assert table.stats.peak_flows == 4

    def test_drop_new_policy_counts_overflow_drops(self):
        table = SpinFlowTable(
            short_dcid_length=8, max_flows=2, overflow_policy="drop-new"
        )
        cids = [bytes([i] * 8) for i in range(3)]
        for index, cid in enumerate(cids):
            table.on_server_datagram(float(index), datagram(cid, 0, False))
        # The third flow was dropped, not admitted; nothing was evicted.
        assert len(table.flows) == 2
        assert table.evicted == []
        assert table.stats.overflow_drops == 1
        assert table.stats.flows_created == 2
        # Established flows still update while the table is full.
        table.on_server_datagram(3.0, datagram(cids[0], 1, True))
        assert table.flows[ConnectionId(cids[0]).hex].packets == 2

    def test_unknown_overflow_policy_rejected(self):
        with pytest.raises(ValueError):
            SpinFlowTable(overflow_policy="magic")

    def test_idle_expiry_is_amortized_but_still_happens(self):
        """Sweeps run at most every idle_timeout/4 of stream time, yet
        idle flows are still retired within the timeout plus that slack."""
        table = SpinFlowTable(short_dcid_length=8, idle_timeout_ms=100.0)
        idle_cid = bytes([9] * 8)
        busy_cid = bytes([1] * 8)
        table.on_server_datagram(0.0, datagram(idle_cid, 0, False))
        for step in range(1, 200):
            table.on_server_datagram(float(step), datagram(busy_cid, step, False))
        assert ConnectionId(idle_cid).hex not in table.flows
        assert table.stats.flows_expired == 1
        # Amortization: far fewer sweeps than datagrams.
        assert table.stats.idle_sweeps <= 200 / (100.0 / 4.0) + 2
        expired = next(
            f for f in table.evicted if f.flow_key == ConnectionId(idle_cid).hex
        )
        # Retired no later than timeout + sweep period after last activity.
        assert expired.last_seen_ms == 0.0

    def test_retire_hook_reports_reason(self):
        retired = []
        table = SpinFlowTable(
            short_dcid_length=8,
            max_flows=1,
            idle_timeout_ms=100.0,
            retain_retired=False,
            on_retire=lambda flow, reason: retired.append((flow.flow_key, reason)),
        )
        cid_a, cid_b = bytes([1] * 8), bytes([2] * 8)
        table.on_server_datagram(0.0, datagram(cid_a, 0, False))
        table.on_server_datagram(1.0, datagram(cid_b, 0, False))  # evicts A
        table.on_server_datagram(500.0, datagram(cid_a, 1, False))  # expires B
        assert retired == [
            (ConnectionId(cid_a).hex, "evicted"),
            (ConnectionId(cid_b).hex, "expired"),
        ]
        # retain_retired=False keeps the retired list empty (bounded memory).
        assert table.evicted == []

    def test_on_packet_hook_and_stats_counters(self):
        seen = []
        table = SpinFlowTable(
            short_dcid_length=8,
            on_packet=lambda flow, time_ms: seen.append((flow.flow_key, time_ms)),
        )
        table.on_server_datagram(0.0, datagram(CID_A, 0, False))
        table.on_server_datagram(1.0, datagram(CID_B, 0, True))
        table.on_server_datagram(2.0, b"junk-datagram")
        stats = table.stats
        assert stats.datagrams == 3
        assert stats.short_header_packets == 2
        assert stats.parse_errors == 1
        assert stats.flows_created == 2
        assert stats.flows_retired == 0
        assert len(seen) == 2
        assert seen[0][0] == ConnectionId(CID_A).hex

    def test_streaming_observer_factory(self):
        """The table accepts a pluggable bounded-memory observer."""
        from repro.core.observer import StreamingSpinObserver

        samples = []
        table = SpinFlowTable(
            short_dcid_length=8,
            observer_factory=lambda key: StreamingSpinObserver(
                on_sample=lambda t, rtt: samples.append((key, rtt))
            ),
        )
        for pn in range(6):
            table.on_server_datagram(pn * 40.0, datagram(CID_A, pn, pn % 2 == 1))
        # Edges at 40,80,...: samples are consecutive edge intervals.
        assert samples == [(ConnectionId(CID_A).hex, 40.0)] * 4
        flow = table.flows[ConnectionId(CID_A).hex]
        # Retired samples are not accumulated in the flow record.
        assert flow.observation().rtts_received_ms == []
        assert flow.observation().values_seen == {False, True}


class TestRealTraffic:
    def test_table_matches_single_flow_observer(self):
        """Feeding one real connection through the table equals the
        dedicated wire observer."""
        from repro._util.rng import derive_rng
        from repro.core.spin import SpinPolicy
        from repro.core.wire_observer import WireObserver
        from repro.netsim.path import PathProfile
        from repro.web.http3 import ResponsePlan, run_exchange

        observer = WireObserver(short_dcid_length=8)
        table = SpinFlowTable(short_dcid_length=8)

        class TeeObserver(WireObserver):
            def on_datagram(self, time_ms, direction, data):
                super().on_datagram(time_ms, direction, data)
                if direction == "server-to-client":
                    table.on_server_datagram(time_ms, data)

        tee = TeeObserver(short_dcid_length=8)
        plan = ResponsePlan(server_header="x", think_time_ms=25.0, write_sizes=(60_000,))
        profile = PathProfile(propagation_delay_ms=20.0)
        run_exchange(
            "www.flows.test",
            plan,
            SpinPolicy.SPIN,
            SpinPolicy.SPIN,
            profile,
            profile,
            derive_rng(11, "flowtable"),
            wire_observer=tee,
        )
        (observation,) = table.observations().values()
        assert observation.rtts_received_ms == tee.observation().rtts_received_ms


class TestZeroLengthCid:
    def test_zero_length_cids_keyed_by_tuple(self):
        """Regression: two zero-length-CID connections from different
        client tuples must not collapse into one "(empty)" flow."""
        from repro.core.flow_table import tuple_flow_key

        table = SpinFlowTable(short_dcid_length=0)
        tuple_a = ("10.0.0.1", 40000, "198.18.0.1", 443)
        tuple_b = ("10.0.0.2", 40001, "198.18.0.1", 443)
        for pn in range(4):
            table.on_server_datagram(pn * 40.0, datagram(b"", pn, pn % 2 == 1), tuple_a)
            table.on_server_datagram(pn * 100.0, datagram(b"", pn, pn % 2 == 1), tuple_b)
        assert len(table.flows) == 2
        assert set(table.flows) == {tuple_flow_key(tuple_a), tuple_flow_key(tuple_b)}
        observations = table.observations()
        assert observations[tuple_flow_key(tuple_a)].rtts_received_ms == pytest.approx(
            [40.0, 40.0]
        )
        assert observations[tuple_flow_key(tuple_b)].rtts_received_ms == pytest.approx(
            [100.0, 100.0]
        )

    def test_zero_length_cid_without_tuple_falls_back(self):
        """No tap tuple available: the legacy "(empty)" key still works."""
        table = SpinFlowTable(short_dcid_length=0)
        table.on_server_datagram(0.0, datagram(b"", 0, False))
        assert set(table.flows) == {"(empty)"}


class TestResolverIntegration:
    """SpinFlowTable + FlowKeyResolver: migration-aware keying."""

    TUPLE = ("10.1.2.3", 50000, "198.18.0.1", 443)
    TUPLE2 = ("10.9.9.9", 61000, "198.18.0.1", 443)

    @staticmethod
    def make_table(cid_linkage=True, **kwargs):
        from repro.core.flow_resolver import FlowKeyResolver

        resolver = FlowKeyResolver(cid_linkage=cid_linkage)
        table = SpinFlowTable(
            short_dcid_length=8, resolver=resolver, **kwargs
        )
        return table, resolver

    def test_cid_rotation_stays_one_flow(self):
        """Resolver counterpart of the rotation test below: the same
        logical connection survives a DCID change as ONE flow."""
        table, resolver = self.make_table()
        for pn in range(6):
            cid = CID_A if pn < 3 else CID_B
            table.on_server_datagram(pn * 30.0, datagram(cid, pn, pn % 2 == 1), self.TUPLE)
        flows = table.all_flows()
        assert len(flows) == 1
        assert resolver.flows_migrated == 1
        assert resolver.flows_split == 0
        # The un-split stream reconstructs the full edge series.
        assert len(flows[0].observation().edges_received) == 5

    def test_cid_rotation_without_linkage_splits(self):
        table, resolver = self.make_table(cid_linkage=False)
        for pn in range(6):
            cid = CID_A if pn < 3 else CID_B
            table.on_server_datagram(pn * 30.0, datagram(cid, pn, pn % 2 == 1), self.TUPLE)
        assert len(table.all_flows()) == 2
        assert resolver.flows_migrated == 0
        assert resolver.flows_split == 1

    def test_nat_rebind_keeps_flow_and_counts(self):
        """Same CID from a new tuple: one flow, one rebind counted."""
        table, resolver = self.make_table()
        table.on_server_datagram(0.0, datagram(CID_A, 0, False), self.TUPLE)
        table.on_server_datagram(40.0, datagram(CID_A, 1, True), self.TUPLE)
        table.on_server_datagram(80.0, datagram(CID_A, 2, False), self.TUPLE2)
        table.on_server_datagram(120.0, datagram(CID_A, 3, True), self.TUPLE2)
        assert len(table.flows) == 1
        assert resolver.rebinds_seen == 1
        assert resolver.flows_migrated == 0
        flow = next(iter(table.flows.values()))
        assert flow.observation().rtts_received_ms == pytest.approx([40.0, 40.0])

    def test_first_seen_preserved_across_migration(self):
        """Migration must not reset flow age (first_seen_ms)."""
        table, _ = self.make_table()
        table.on_server_datagram(10.0, datagram(CID_A, 0, False), self.TUPLE)
        table.on_server_datagram(500.0, datagram(CID_B, 1, True), self.TUPLE)
        flow = next(iter(table.flows.values()))
        assert flow.first_seen_ms == 10.0
        assert flow.last_seen_ms == 500.0
        assert flow.packets == 2

    def test_retired_flow_releases_resolver_state(self):
        """Linkage state is keyed to live flows: after idle expiry the
        tuple and CIDs are free, and a reappearing CID opens a NEW flow
        rather than resurrecting retired state."""
        table, resolver = self.make_table(idle_timeout_ms=100.0, retain_retired=True)
        table.on_server_datagram(0.0, datagram(CID_A, 0, False), self.TUPLE)
        # Unrelated traffic far in the future expires the first flow.
        table.on_server_datagram(1000.0, datagram(CID_B, 0, False), self.TUPLE2)
        assert table.stats.flows_expired == 1
        # Same CID again: a fresh flow, no split counted (tuple was free).
        table.on_server_datagram(1001.0, datagram(CID_A, 0, False), self.TUPLE)
        assert resolver.flows_split == 0
        assert table.stats.flows_created == 3
        live = {flow.flow_key for flow in table.flows.values()}
        assert len(live) == 2

    def test_eviction_churn_under_migration(self):
        """LRU eviction with migrated flows: counters stay consistent
        and the resolver never resurrects an evicted flow's linkage."""
        table, resolver = self.make_table(max_flows=2)
        tuples = [("10.0.0.%d" % i, 40000 + i, "198.18.0.1", 443) for i in range(4)]
        cids = [bytes([i] * 8) for i in range(4)]
        # Two flows, the first migrates to a new CID (stays one flow).
        table.on_server_datagram(0.0, datagram(cids[0], 0, False), tuples[0])
        table.on_server_datagram(1.0, datagram(cids[1], 0, False), tuples[1])
        table.on_server_datagram(2.0, datagram(cids[2], 1, False), tuples[0])
        assert resolver.flows_migrated == 1
        assert len(table.flows) == 2
        # A third flow evicts the LRU (flow B at tuples[1]).
        table.on_server_datagram(3.0, datagram(cids[3], 0, False), tuples[2])
        assert table.stats.flows_evicted == 1
        # Flow B's CID now opens a brand-new flow (state was released).
        table.on_server_datagram(4.0, datagram(cids[1], 1, False), tuples[3])
        assert table.stats.flows_created == 4
        assert resolver.flows_split == 0

    def test_transport_classification_instead_of_parse_errors(self):
        """A TCP segment on the tap is classified, not counted as a
        QUIC parse error; true garbage still is."""
        from repro.netsim.tcp import TcpSegment, encode_tcp_segment

        table, resolver = self.make_table()
        table.on_server_datagram(0.0, datagram(CID_A, 0, False), self.TUPLE)
        segment = encode_tcp_segment(
            TcpSegment(443, 50000, 1, 1, True, 0x10, 40)
        )
        table.on_server_datagram(1.0, segment, self.TUPLE2)
        table.on_server_datagram(2.0, b"\x00\x01\x02", self.TUPLE2)
        assert table.parse_errors == 1  # garbage only
        assert resolver.tcp_datagrams == 1
        assert resolver.quic_datagrams == 1
        assert resolver.unparseable_datagrams == 1
        assert resolver.counters()["transport_mix"] == {
            "quic": 1, "tcp": 1, "unparseable": 1,
        }


class TestCidRotation:
    def test_client_rotation_transparent_to_endpoints(self):
        """The client rotates to a server-issued CID mid-connection;
        the exchange still completes and the server-to-client direction
        (keyed by the client's stable source CID) remains one flow."""
        from repro._util.rng import derive_rng
        from repro.core.spin import SpinPolicy
        from repro.core.wire_observer import Direction, WireObserver
        from repro.netsim.path import PathProfile
        from repro.quic.connection import ConnectionConfig
        from repro.web.http3 import ResponsePlan, run_exchange

        table = SpinFlowTable(short_dcid_length=8)
        uplink_cids = set()

        class Tap(WireObserver):
            def on_datagram(self, time_ms, direction, data):
                super().on_datagram(time_ms, direction, data)
                if direction == Direction.SERVER_TO_CLIENT:
                    table.on_server_datagram(time_ms, data)
                else:
                    from repro.quic.datagram import decode_datagram
                    from repro.quic.packet import ShortHeader as SH

                    try:
                        for packet in decode_datagram(data, 8):
                            if isinstance(packet.header, SH):
                                uplink_cids.add(packet.header.destination_cid.hex)
                    except Exception:
                        pass

        plan = ResponsePlan(
            server_header="x", think_time_ms=20.0, write_sizes=(150_000,)
        )
        profile = PathProfile(propagation_delay_ms=20.0)
        result = run_exchange(
            "www.rotation.test",
            plan,
            SpinPolicy.SPIN,
            SpinPolicy.SPIN,
            profile,
            profile,
            derive_rng(13, "cid-rotation"),
            client_config=ConnectionConfig(rotate_cid_after_packets=4),
            wire_observer=Tap(short_dcid_length=8),
        )
        assert result.success
        assert result.client._cid_rotated
        # The client used two different DCIDs on the uplink ...
        assert len(uplink_cids) == 2
        # ... while the downlink flow stays trackable as one.
        assert len(table.all_flows()) == 1

    def test_server_to_client_rotation_observed_as_two_flows(self):
        """Drive rotation on the observed direction directly."""
        cid_first = bytes([1] * 8)
        cid_second = bytes([2] * 8)
        table = SpinFlowTable(short_dcid_length=8)
        # One logical connection: pn continues, DCID changes at pn 3.
        for pn in range(6):
            cid = cid_first if pn < 3 else cid_second
            table.on_server_datagram(pn * 30.0, datagram(cid, pn, pn % 2 == 1))
        flows = table.all_flows()
        assert len(flows) == 2
        # Neither fragment alone reconstructs the full edge series.
        total_edges = sum(len(f.observation().edges_received) for f in flows)
        assert total_edges < 5  # the un-split stream would show 5 edges
