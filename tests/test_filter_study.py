"""The RFC 9312 filter study over connection records."""

import pytest

from conftest import make_connection_record
from repro.analysis.filter_study import run_filter_study
from repro.core.classify import SpinBehaviour


def records_with_reordering_noise():
    """Two clean connections plus one with a spurious ultra-short cycle."""
    clean = make_connection_record(
        packets=[(i * 40.0, i, i % 2 == 1) for i in range(6)],
        stack_rtts=[39.0],
    )
    clean2 = make_connection_record(
        packets=[(i * 50.0, i, i % 2 == 1) for i in range(6)],
        stack_rtts=[49.0],
    )
    noisy = make_connection_record(
        packets=[
            (0.0, 0, False),
            (40.0, 2, True),
            (40.4, 1, False),  # straggler: two spurious edges
            (41.0, 3, True),
            (80.0, 4, False),
            (120.0, 5, True),
        ],
        stack_rtts=[39.0],
        behaviour=SpinBehaviour.SPIN,
    )
    return [clean, clean2, noisy]


class TestFilterStudy:
    def test_raw_outcome_counts_all_candidates(self):
        study = run_filter_study(records_with_reordering_noise())
        assert study.raw.connections == 3
        assert study.raw.connections_lost == 0

    def test_static_filter_removes_subthreshold_samples(self):
        study = run_filter_study(records_with_reordering_noise(), static_floor_ms=5.0)
        noisy_raw = study.raw.results[-1]
        noisy_static = study.static.results[-1]
        # The 0.4/0.6 ms spurious samples vanish: accuracy improves.
        assert abs(noisy_static.absolute_ms) < abs(noisy_raw.absolute_ms) + 1e-9
        assert study.static.within_25pct_share >= study.raw.within_25pct_share

    def test_hold_time_filter_improves_noisy_connection(self):
        study = run_filter_study(records_with_reordering_noise())
        assert study.hold_time.within_25pct_share >= study.raw.within_25pct_share

    def test_clean_connections_untouched(self):
        study = run_filter_study(records_with_reordering_noise()[:2])
        for outcome in (study.static, study.hold_time, study.combined):
            assert [r.ratio for r in outcome.results] == pytest.approx(
                [r.ratio for r in study.raw.results]
            )

    def test_connections_lost_counted(self):
        # A connection whose only samples are sub-threshold disappears
        # under the static filter.
        tiny = make_connection_record(
            packets=[(0.0, 0, False), (0.3, 1, True), (0.6, 2, False)],
            stack_rtts=[40.0],
        )
        study = run_filter_study([tiny], static_floor_ms=1.0)
        assert study.raw.connections == 1
        assert study.static.connections == 0
        assert study.static.connections_lost == 1

    def test_non_spinning_records_ignored(self):
        zero = make_connection_record(
            spin_rtts=[], stack_rtts=[30.0], behaviour=SpinBehaviour.ALL_ZERO
        )
        zero.observation.values_seen = {False}
        study = run_filter_study([zero])
        assert study.raw.connections == 0

    def test_outcome_summaries(self):
        study = run_filter_study(records_with_reordering_noise())
        for outcome in study.outcomes():
            assert 0.0 <= outcome.within_25pct_share <= 1.0
            assert outcome.median_abs_ms >= 0.0
