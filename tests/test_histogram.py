"""The shared log-scale histogram (``repro._util.histogram``)."""

from __future__ import annotations

import pickle
import random

import pytest

from repro._util.histogram import LogHistogram


class TestEdgeCases:
    def test_empty_percentiles_are_none(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.percentile(50.0) is None
        assert hist.percentile(0.0) is None
        assert hist.percentile(100.0) is None
        assert hist.mean is None
        assert hist.summary() == {"count": 0}

    def test_single_sample_dominates_every_quantile(self):
        hist = LogHistogram()
        hist.add(42.0)
        for q in (0.0, 50.0, 90.0, 99.0, 100.0):
            assert hist.percentile(q) == 42.0
        assert hist.mean == 42.0
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["p50_ms"] == 42.0
        assert summary["min_ms"] == summary["max_ms"] == 42.0

    def test_overflow_bucket_reports_exact_maximum(self):
        hist = LogHistogram(min_value=1.0, max_value=100.0)
        hist.add(50.0)
        hist.add(1_000_000.0)  # lands in the overflow bin
        assert hist.overflow == 1
        assert hist.count == 2
        assert hist.percentile(99.0) == 1_000_000.0
        assert hist.max_seen == 1_000_000.0

    def test_underflow_bucket_reports_exact_minimum(self):
        hist = LogHistogram(min_value=1.0, max_value=100.0)
        hist.add(0.001)
        hist.add(50.0)
        assert hist.underflow == 1
        assert hist.percentile(1.0) == 0.001
        assert hist.min_seen == 0.001

    def test_invalid_quantile_rejected(self):
        hist = LogHistogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_invalid_binning_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=10.0, max_value=5.0)
        with pytest.raises(ValueError):
            LogHistogram(bins_per_decade=0)


class TestMerge:
    def test_merge_requires_same_binning(self):
        a = LogHistogram(0.1, 60_000.0, 32)
        b = LogHistogram(1.0, 60_000.0, 32)
        with pytest.raises(ValueError, match="binning"):
            a.merge(b)

    def test_sharded_merge_is_exact(self):
        """Sharded fill + merge equals sequential fill, bit for bit.

        Plain float accumulation would differ in the last ulp between
        the two orders; the exact-partial sum must not.
        """
        rng = random.Random(7)
        samples = [rng.lognormvariate(3.0, 1.5) for _ in range(5_000)]

        sequential = LogHistogram()
        for sample in samples:
            sequential.add(sample)

        shards = [LogHistogram() for _ in range(4)]
        for index, sample in enumerate(samples):
            shards[index % 4].add(sample)
        merged = LogHistogram()
        for shard in shards:
            merged.merge(shard)

        assert merged.count == sequential.count
        assert merged.counts == sequential.counts
        assert repr(merged.total) == repr(sequential.total)
        assert merged.summary() == sequential.summary()

    def test_merge_order_independent(self):
        rng = random.Random(11)
        shards = []
        for _ in range(3):
            hist = LogHistogram()
            for _ in range(500):
                hist.add(rng.uniform(0.05, 90_000.0))
            shards.append(hist)

        forward = LogHistogram()
        for shard in shards:
            forward.merge(shard)
        backward = LogHistogram()
        for shard in reversed(shards):
            backward.merge(shard)
        assert repr(forward.total) == repr(backward.total)
        assert forward.summary() == backward.summary()

    def test_pickle_roundtrip(self):
        hist = LogHistogram()
        for value in (0.5, 3.0, 700.0, 100_000.0):
            hist.add(value)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.count == hist.count
        assert clone.summary() == hist.summary()
        clone.add(9.0)  # still usable after unpickling
        assert clone.count == hist.count + 1
