"""Public API surface and small utility coverage."""

import pytest

import repro
from repro._util.units import (
    MS_PER_SECOND,
    ms_to_seconds,
    ms_to_us,
    seconds_to_ms,
    us_to_ms,
)


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.campaign
        import repro.core
        import repro.internet
        import repro.monitor
        import repro.netsim
        import repro.qlog
        import repro.quic
        import repro.web

        for module in (
            repro.analysis,
            repro.campaign,
            repro.core,
            repro.internet,
            repro.monitor,
            repro.netsim,
            repro.qlog,
            repro.quic,
            repro.web,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_flow(self):
        """The flow advertised in the package docstring works."""
        population = repro.build_population(
            repro.PopulationConfig(toplist_domains=20, czds_domains=60, seed=2)
        )
        dataset = repro.Scanner(population).scan()
        overview = repro.support_overview(dataset, population)
        assert overview.row(repro.ListGroup.CZDS).domains_total == 60


class TestUnits:
    def test_conversions(self):
        assert seconds_to_ms(1.5) == 1500.0
        assert ms_to_seconds(250.0) == 0.25
        assert us_to_ms(1500.0) == 1.5
        assert ms_to_us(2.0) == 2000.0
        assert MS_PER_SECOND == 1000.0

    def test_roundtrip(self):
        assert ms_to_seconds(seconds_to_ms(3.25)) == 3.25
        assert us_to_ms(ms_to_us(7.5)) == 7.5


class TestPaperReportUnit:
    def test_report_structure(self):
        from repro.analysis.paper_report import generate_paper_report

        population = repro.build_population(
            repro.PopulationConfig(toplist_domains=80, czds_domains=400, seed=6)
        )
        report = generate_paper_report(population, include_longitudinal=False)
        assert "Table 1" in report.text
        assert "Table 4" in report.text
        assert report.compliance is None
        assert report.support_v4.row(repro.ListGroup.CZDS).domains_total == 400
        assert report.organizations.total_connections > 0

    def test_report_with_longitudinal(self):
        from repro.analysis.paper_report import generate_paper_report

        population = repro.build_population(
            repro.PopulationConfig(toplist_domains=0, czds_domains=250, seed=7)
        )
        report = generate_paper_report(
            population,
            longitudinal_weeks=3,
            longitudinal_domain_cap=40,
        )
        assert report.compliance is not None
        assert report.compliance.n_weeks == 3
        assert "Figure 2" in report.text
