"""Shared fixtures and factories for the test suite.

The factories build analysis-layer inputs (observations, connection
records) directly, so analysis tests do not need to run full packet
simulations; integration tests exercise the real pipeline separately.
"""

from __future__ import annotations

import pytest

from repro._util.rng import derive_rng
from repro.core.classify import SpinBehaviour
from repro.core.observer import SpinObservation, SpinObserver
from repro.internet.asdb import IpAddr
from repro.internet.population import PopulationConfig, build_population
from repro.web.scanner import ConnectionRecord


def make_observation(
    packets: list[tuple[float, int, bool]],
) -> SpinObservation:
    """Run the observer over explicit (time, pn, spin) packets."""
    observer = SpinObserver()
    for time_ms, packet_number, spin in packets:
        observer.on_packet(time_ms, packet_number, spin)
    return observer.observation()


def make_connection_record(
    spin_rtts: list[float] | None = None,
    stack_rtts: list[float] | None = None,
    behaviour: SpinBehaviour = SpinBehaviour.SPIN,
    packets: list[tuple[float, int, bool]] | None = None,
    ip_value: int = 0x0A000001,
    provider: str = "other-hosting",
    server_header: str = "LiteSpeed",
    domain: str = "example.com",
) -> ConnectionRecord:
    """A connection record with a hand-crafted observation.

    If ``packets`` is given, the observation (and with it the spin RTT
    series) is computed from them; otherwise a synthetic observation is
    fabricated whose received/sorted series equal ``spin_rtts``.
    """
    if packets is not None:
        observation = make_observation(packets)
    else:
        observation = SpinObservation(packets_seen=max(2, len(spin_rtts or []) + 1))
        observation.values_seen = {False, True}
        observation.rtts_received_ms = list(spin_rtts or [])
        observation.rtts_sorted_ms = list(spin_rtts or [])
    return ConnectionRecord(
        domain=domain,
        host=f"www.{domain}",
        ip=IpAddr(value=ip_value, version=4),
        ip_version=4,
        provider_name=provider,
        server_header=server_header,
        status=200,
        success=True,
        behaviour=behaviour,
        observation=observation,
        stack_rtts_ms=list(stack_rtts or []),
    )


@pytest.fixture(scope="session")
def tiny_population():
    """A small deterministic population shared by integration tests."""
    return build_population(
        PopulationConfig(toplist_domains=250, czds_domains=1200, seed=99)
    )


@pytest.fixture()
def rng():
    """A deterministic RNG, fresh per test."""
    return derive_rng(1234, "test")
