"""The synthetic domain population and its stack processes."""

import pytest

from repro.internet.population import (
    ListGroup,
    PopulationConfig,
    build_population,
)
from repro.web.server_profiles import STACKS


@pytest.fixture(scope="module")
def population():
    return build_population(
        PopulationConfig(toplist_domains=600, czds_domains=3000, seed=42)
    )


class TestConstruction:
    def test_counts(self, population):
        assert len(population.group_members(ListGroup.TOPLISTS)) == 600
        assert len(population.group_members(ListGroup.CZDS)) == 3000

    def test_com_net_org_is_czds_subset(self, population):
        cno = population.group_members(ListGroup.COM_NET_ORG)
        czds = set(d.name for d in population.group_members(ListGroup.CZDS))
        assert all(d.name in czds for d in cno)
        assert all(d.zone in ("com", "net", "org") for d in cno)
        # ~84.5 % of CZDS domains live in com/net/org.
        assert 0.78 < len(cno) / 3000 < 0.90

    def test_resolve_rates_near_marginals(self, population):
        czds = population.group_members(ListGroup.CZDS)
        resolved = sum(d.resolves for d in czds) / len(czds)
        assert 0.80 < resolved < 0.89

        toplist = population.group_members(ListGroup.TOPLISTS)
        resolved_top = sum(d.resolves for d in toplist) / len(toplist)
        assert 0.63 < resolved_top < 0.78

    def test_quic_rates_near_marginals(self, population):
        czds = [d for d in population.group_members(ListGroup.CZDS) if d.resolves]
        quic = sum(d.quic_enabled for d in czds) / len(czds)
        assert 0.09 < quic < 0.16

    def test_determinism(self):
        config = PopulationConfig(toplist_domains=50, czds_domains=100, seed=5)
        a = build_population(config)
        b = build_population(config)
        assert [d.provider_name for d in a.domains] == [
            d.provider_name for d in b.domains
        ]

    def test_unresolved_have_no_provider(self, population):
        for domain in population.domains:
            if not domain.resolves:
                assert domain.provider_name is None


class TestHostLookup:
    def test_ip_stable_and_in_provider_prefix(self, population):
        import ipaddress

        from repro.internet.providers import provider_by_name

        domain = next(d for d in population.domains if d.quic_enabled)
        ip_a = population.host_of(domain, 4)
        ip_b = population.host_of(domain, 4)
        assert ip_a == ip_b
        provider = provider_by_name(domain.provider_name)
        network = ipaddress.ip_network(provider.v4_prefix)
        assert ipaddress.IPv4Address(ip_a.value) in network

    def test_v6_requires_aaaa(self, population):
        domain = next(
            d for d in population.domains if d.resolves and not d.has_aaaa
        )
        with pytest.raises(ValueError):
            population.host_of(domain, 6)

    def test_unresolved_rejected(self, population):
        domain = next(d for d in population.domains if not d.resolves)
        with pytest.raises(ValueError):
            population.host_of(domain, 4)

    def test_bad_version_rejected(self, population):
        domain = next(d for d in population.domains if d.resolves)
        with pytest.raises(ValueError):
            population.host_of(domain, 5)


class TestStackProcess:
    def test_stack_is_stable_within_a_week(self, population):
        domain = next(d for d in population.domains if d.quic_enabled)
        assert population.stack_of(domain, 4, epoch=10) == population.stack_of(
            domain, 4, epoch=10
        )

    def test_stack_names_valid(self, population):
        for domain in population.domains:
            if domain.quic_enabled:
                stack = population.stack_of(domain, 4, epoch=0)
                assert stack in STACKS

    def test_weekly_marginal_matches_mix(self, population):
        """Stationarity: across many domains and weeks, hyperscaler
        domains never spin while shared-hosting domains spin at roughly
        the calibrated stack-mix rate."""
        from repro.internet.providers import provider_by_name

        hostinger = [
            d
            for d in population.domains
            if d.quic_enabled and d.provider_name == "hostinger"
        ]
        if len(hostinger) < 10:
            pytest.skip("too few hostinger domains at this scale")
        spin_capable = 0
        total = 0
        for domain in hostinger:
            for epoch in (0, 20, 40, 60):
                stack = population.stack_of(domain, 4, epoch)
                total += 1
                spin_capable += STACKS[stack].spin_config.ever_spins
        share = spin_capable / total
        expected = sum(
            w
            for s, w in provider_by_name("hostinger").stack_mix
            if STACKS[s].spin_config.ever_spins
        )
        assert expected - 0.15 < share < expected + 0.15

    def test_stack_persists_across_most_weeks(self, population):
        """With persistence 0.97, consecutive weeks rarely differ."""
        changes = 0
        comparisons = 0
        domains = [d for d in population.domains if d.quic_enabled][:150]
        for domain in domains:
            previous = population.stack_of(domain, 4, epoch=0)
            for epoch in range(1, 9):
                current = population.stack_of(domain, 4, epoch)
                comparisons += 1
                changes += current != previous
                previous = current
        assert changes / comparisons < 0.08

    def test_churn_actually_happens_long_term(self, population):
        domains = [d for d in population.domains if d.quic_enabled][:200]
        changed = sum(
            population.stack_of(d, 4, 0) != population.stack_of(d, 4, 60)
            for d in domains
        )
        assert changed > 0


class TestConfigValidation:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            PopulationConfig(quic_rate_czds=1.5)
        with pytest.raises(ValueError):
            PopulationConfig(zone_density_scale=0.0)
        with pytest.raises(ValueError):
            PopulationConfig(stack_persistence_tiers=((1.0, 1.0),))
        with pytest.raises(ValueError):
            PopulationConfig(stack_persistence_tiers=())
        with pytest.raises(ValueError):
            PopulationConfig(toplist_domains=-1)
