"""The range-addressed streaming population and streaming scan.

A :class:`StreamingPopulation` must be a *function* of (config, index):
any range materializes identically in any process at any time, and the
streaming scan over it is bit-identical to a batch scan of the same
materialized records — at every worker count — while holding only a
bounded window of shards in memory.
"""

from __future__ import annotations

import pytest

from repro.internet.population import PopulationConfig
from repro.internet.streaming import StreamingPopulation
from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner

CONFIG = PopulationConfig(toplist_domains=40, czds_domains=260, seed=77)


@pytest.fixture(scope="module")
def streaming():
    return StreamingPopulation(CONFIG)


class TestDeterminism:
    def test_domain_at_is_pure(self, streaming):
        for index in (0, 5, 39, 40, 123, 299):
            assert streaming.domain_at(index) == streaming.domain_at(index)

    def test_fresh_instance_generates_identical_records(self, streaming):
        other = StreamingPopulation(CONFIG)
        assert streaming.materialize_range(0, 300) == other.materialize_range(
            0, 300
        )

    def test_ranges_compose(self, streaming):
        whole = streaming.materialize_range(0, 300)
        pieces = [
            record
            for start in range(0, 300, 37)
            for record in streaming.materialize_range(start, start + 37)
        ]
        assert pieces == whole

    def test_iter_targets_matches_ranges(self, streaming):
        assert list(streaming.iter_targets(batch=41)) == streaming.materialize_range(
            0, 300
        )

    def test_toplist_then_czds_layout(self, streaming):
        records = streaming.materialize_range(0, 300)
        assert all(r.in_toplist for r in records[:40])
        assert all(r.in_czds for r in records[40:])
        assert records[0].name.startswith("top0000000.")
        assert records[40].name.startswith("domain000000000.")

    def test_out_of_range_raises(self, streaming):
        with pytest.raises(IndexError):
            streaming.domain_at(300)
        with pytest.raises(IndexError):
            streaming.domain_at(-1)


class TestBoundedSurface:
    def test_domains_attribute_refuses(self, streaming):
        with pytest.raises(TypeError, match="materialize_range"):
            streaming.domains

    def test_domain_count(self, streaming):
        assert streaming.domain_count == 300

    def test_spawn_spec_rebuilds_equal_population(self, streaming):
        kind, config = streaming.spawn_spec()
        assert kind == "streaming"
        rebuilt = StreamingPopulation(config)
        assert rebuilt.materialize_range(10, 20) == streaming.materialize_range(
            10, 20
        )

    def test_trim_caches_preserves_stack_determinism(self, streaming):
        quic = [
            r for r in streaming.materialize_range(0, 300) if r.quic_enabled
        ]
        before = [streaming.stack_of(r, 4, epoch=3) for r in quic]
        assert len(streaming._stack_cache) > 0
        streaming.trim_caches(limit=0)
        assert streaming._stack_cache == {}
        assert [streaming.stack_of(r, 4, epoch=3) for r in quic] == before


class TestStreamingScan:
    @pytest.fixture(scope="class")
    def batch_dataset(self, streaming):
        # Ground truth: a batch scan over the fully materialized records.
        return Scanner(streaming, ScanConfig(qlog_sample_rate=0.2)).scan(
            week_label="cw20-2023",
            ip_version=4,
            domains=streaming.materialize_range(0, 300),
        )

    def test_stream_equals_batch_scan(self, streaming, batch_dataset):
        results = list(
            Scanner(streaming, ScanConfig(qlog_sample_rate=0.2)).scan_stream(
                week_label="cw20-2023", ip_version=4
            )
        )
        assert results == batch_dataset.results

    @pytest.mark.parametrize("workers,chunk", ((2, 32), (4, None)))
    def test_stream_pool_identity(self, streaming, batch_dataset, workers, chunk):
        scanner = Scanner(
            streaming,
            ScanConfig(qlog_sample_rate=0.2),
            parallel=ParallelScanConfig(
                workers=workers, chunk_size=chunk, force_pool=True
            ),
        )
        stats: dict = {}
        try:
            results = list(
                scanner.scan_stream(
                    week_label="cw20-2023", ip_version=4, stats=stats
                )
            )
        finally:
            scanner.close()
        assert results == batch_dataset.results
        assert stats["pool"] is True
        # Bounded window: never more shards outstanding than the cap.
        assert 1 <= stats["max_outstanding"] <= max(2, workers * 3)

    def test_stream_rejects_breaker(self, streaming):
        from repro.faults import BreakerPolicy, ResilienceConfig

        scanner = Scanner(
            streaming,
            ScanConfig(
                resilience=ResilienceConfig(
                    breaker=BreakerPolicy(
                        failure_threshold=4, cooldown_attempts=6
                    )
                )
            ),
        )
        with pytest.raises(ValueError, match="circuit breaker"):
            next(iter(scanner.scan_stream()))

    def test_stream_with_faults_matches_batch(self, streaming):
        from repro.faults import ResilienceConfig, RetryPolicy, parse_fault_plan

        config = ScanConfig(
            faults=parse_fault_plan("blackhole:0.05,reset:0.08"),
            resilience=ResilienceConfig(
                connect_timeout_ms=15_000, retry=RetryPolicy(max_attempts=2)
            ),
        )
        batch = Scanner(streaming, config).scan(
            week_label="cw21-2023",
            ip_version=4,
            domains=streaming.materialize_range(0, 300),
        )
        scanner = Scanner(
            streaming,
            config,
            parallel=ParallelScanConfig(
                workers=2, chunk_size=50, force_pool=True
            ),
        )
        try:
            results = list(scanner.scan_stream(week_label="cw21-2023"))
        finally:
            scanner.close()
        assert results == batch.results
