"""scripts/seed_from_tranco.py: Tranco CSV → /v1/seeds batch."""

import importlib.util
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "seed_from_tranco.py"

CSV = """\
rank,domain
1,google.com
2,YouTube.com
3,google.com
4,not a domain
5,
example.org
# a comment
"""


@pytest.fixture(scope="module")
def tranco():
    spec = importlib.util.spec_from_file_location("seed_from_tranco", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestParse:
    def test_rank_order_dedupe_and_malformed_rows(self, tranco):
        domains, skipped = tranco.parse_tranco_csv(CSV.splitlines())
        assert domains == ["google.com", "youtube.com", "example.org"]
        assert skipped == 1  # "not a domain"; empty cells are not rows

    def test_top_caps_the_batch(self, tranco):
        domains, _ = tranco.parse_tranco_csv(CSV.splitlines(), top=2)
        assert domains == ["google.com", "youtube.com"]


class TestCommandLine:
    def run(self, *argv, stdin=None):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *argv],
            input=stdin,
            capture_output=True,
            text=True,
        )

    def test_stdin_to_stdout_batch(self):
        result = self.run("-", "--top", "2", stdin=CSV)
        assert result.returncode == 0, result.stderr
        assert json.loads(result.stdout) == {
            "domains": ["google.com", "youtube.com"]
        }

    def test_offline_seed_file(self, tmp_path):
        csv_path = tmp_path / "top.csv"
        csv_path.write_text(CSV, encoding="utf-8")
        out_path = tmp_path / "seeds.json"
        result = self.run(str(csv_path), "--out", str(out_path))
        assert result.returncode == 0, result.stderr
        assert "wrote 3 domain(s)" in result.stderr
        batch = json.loads(out_path.read_text(encoding="utf-8"))
        assert batch["domains"] == ["google.com", "youtube.com", "example.org"]

    def test_empty_input_is_an_error(self):
        result = self.run("-", stdin="rank,domain\n")
        assert result.returncode == 2
        assert "no domains" in result.stderr

    def test_post_to_a_live_service(self, tranco, tmp_path):
        from repro.service import (
            ServiceState,
            SpoolStore,
            WeekIndexer,
            build_server,
        )

        state = ServiceState(
            SpoolStore(tmp_path / "spool"), WeekIndexer(tmp_path / "index")
        )
        server = build_server(state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            # The bare service root is enough; the script appends /v1/seeds.
            reply = tranco.post_seeds(
                f"http://127.0.0.1:{port}", ["b.example", "a.example"]
            )
        finally:
            server.shutdown()
            server.server_close()
        assert reply == {"accepted": 2, "new": 2, "total": 2}
        stored = json.loads(
            (tmp_path / "spool" / "seeds.json").read_text(encoding="utf-8")
        )
        assert stored["domains"] == ["a.example", "b.example"]
