"""The command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "spin samples" in out
        assert "mapped ratio" in out


class TestScanAnalyze:
    @pytest.fixture(scope="class")
    def dataset_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "dataset.jsonl"
        code = main(
            [
                "scan",
                "--czds", "600",
                "--toplist", "100",
                "--seed", "33",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_scan_writes_jsonl(self, dataset_path):
        lines = dataset_path.read_text().strip().splitlines()
        assert len(lines) > 30
        import json

        record = json.loads(lines[0])
        assert record["schema"] == 1
        assert "stack_rtts_ms" in record

    def test_analyze_all_sections(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "AS organizations" in out
        assert "webserver attribution" in out
        assert "RTT accuracy" in out
        assert "negotiated QUIC versions" in out
        assert "filter study" in out
        assert "Cloudflare" in out

    def test_analyze_diagnostics_go_to_stderr(self, dataset_path, capsys):
        """stdout carries only analysis output; progress lines go to
        stderr so ``repro analyze ... > report.txt`` stays clean."""
        assert main(["analyze", str(dataset_path)]) == 0
        captured = capsys.readouterr()
        assert "connection records loaded" in captured.err
        assert "connection records loaded" not in captured.out

    def test_analyze_single_section(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--section", "versions"]) == 0
        out = capsys.readouterr().out
        assert "QUIC v1" in out
        assert "AS organizations" not in out

    def test_scan_deterministic(self, dataset_path, tmp_path):
        again = tmp_path / "again.jsonl"
        main(
            [
                "scan",
                "--czds", "600",
                "--toplist", "100",
                "--seed", "33",
                "--out", str(again),
            ]
        )
        assert again.read_text() == dataset_path.read_text()


class TestTelemetryCommand:
    @pytest.fixture(scope="class")
    def telemetry_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-telemetry") / "tele"
        code = main(
            [
                "scan",
                "--czds", "400",
                "--toplist", "80",
                "--seed", "21",
                "--out", str(directory.parent / "dataset.jsonl"),
                "--telemetry-out", str(directory),
            ]
        )
        assert code == 0
        return directory

    def test_scan_writes_telemetry_directory(self, telemetry_dir):
        for name in ("trace.jsonl", "diag.jsonl", "metrics.json", "metrics.prom"):
            assert (telemetry_dir / name).is_file(), name

    def test_trace_is_stepped_jsonl(self, telemetry_dir):
        import json

        lines = (telemetry_dir / "trace.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0]["name"] == "scan.begin"
        assert [event["step"] for event in events] == list(range(len(events)))

    def test_summarize_renders_counters(self, telemetry_dir, capsys):
        assert main(["telemetry", "summarize", str(telemetry_dir)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "scan.domains" in out
        assert "trace:" in out

    def test_summarize_missing_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["telemetry", "summarize", str(tmp_path / "nope")])

    def test_monitor_telemetry_deterministic(self, tmp_path, capsys):
        for run in ("a", "b"):
            assert main(
                [
                    "monitor",
                    "--flows", "20",
                    "--seed", "13",
                    "--out", str(tmp_path / f"snapshots-{run}.jsonl"),
                    "--telemetry-out", str(tmp_path / run),
                ]
            ) == 0
        captured = capsys.readouterr()
        assert "telemetry written to" in captured.err
        assert "telemetry written to" not in captured.out
        for name in ("trace.jsonl", "metrics.prom", "metrics.json"):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes(), name


class TestCompliance:
    def test_compliance_runs_small(self, capsys):
        assert main(["compliance", "--czds", "400", "--weeks", "4", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "RFC9000" in out


class TestArgumentErrors:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_out_rejected(self):
        with pytest.raises(SystemExit):
            main(["scan"])

    def test_service_config_errors_use_the_cli_convention(self, tmp_path):
        # Service-layer config errors must surface as the one-line
        # ``repro: error:`` convention, not a traceback.
        cases = [
            ["service", "run-once", "--dir", str(tmp_path / "a"),
             "--first-week", "week-zero"],
            ["service", "run-once", "--dir", str(tmp_path / "b"),
             "--czds", "0", "--toplist", "0"],
            ["serve", "--dir", str(tmp_path / "c"), "--port", "99999"],
        ]
        for argv in cases:
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert str(excinfo.value).startswith("repro: error:"), argv


class TestReport:
    def test_report_runs_small(self, capsys):
        assert main(
            [
                "report",
                "--czds", "700",
                "--toplist", "150",
                "--seed", "12",
                "--skip-longitudinal",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 1: IPv4 adoption overview" in out
        assert "Table 2: AS organizations" in out
        assert "Table 4: IPv6 adoption overview" in out
        assert "Figures 3/4: RTT accuracy" in out
        assert "Figure 2" not in out  # skipped
