"""The command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "spin samples" in out
        assert "mapped ratio" in out


class TestScanAnalyze:
    @pytest.fixture(scope="class")
    def dataset_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "dataset.jsonl"
        code = main(
            [
                "scan",
                "--czds", "600",
                "--toplist", "100",
                "--seed", "33",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_scan_writes_jsonl(self, dataset_path):
        lines = dataset_path.read_text().strip().splitlines()
        assert len(lines) > 30
        import json

        record = json.loads(lines[0])
        assert record["schema"] == 1
        assert "stack_rtts_ms" in record

    def test_analyze_all_sections(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "AS organizations" in out
        assert "webserver attribution" in out
        assert "RTT accuracy" in out
        assert "negotiated QUIC versions" in out
        assert "filter study" in out
        assert "Cloudflare" in out

    def test_analyze_single_section(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--section", "versions"]) == 0
        out = capsys.readouterr().out
        assert "QUIC v1" in out
        assert "AS organizations" not in out

    def test_scan_deterministic(self, dataset_path, tmp_path):
        again = tmp_path / "again.jsonl"
        main(
            [
                "scan",
                "--czds", "600",
                "--toplist", "100",
                "--seed", "33",
                "--out", str(again),
            ]
        )
        assert again.read_text() == dataset_path.read_text()


class TestCompliance:
    def test_compliance_runs_small(self, capsys):
        assert main(["compliance", "--czds", "400", "--weeks", "4", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "RFC9000" in out


class TestArgumentErrors:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_out_rejected(self):
        with pytest.raises(SystemExit):
            main(["scan"])


class TestReport:
    def test_report_runs_small(self, capsys):
        assert main(
            [
                "report",
                "--czds", "700",
                "--toplist", "150",
                "--seed", "12",
                "--skip-longitudinal",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 1: IPv4 adoption overview" in out
        assert "Table 2: AS organizations" in out
        assert "Table 4: IPv6 adoption overview" in out
        assert "Figures 3/4: RTT accuracy" in out
        assert "Figure 2" not in out  # skipped
