"""Spin-bit state machines and deployment policies (RFC 9000 17.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.rng import derive_rng
from repro.core.spin import (
    EndpointRole,
    SpinBitState,
    SpinDeploymentConfig,
    SpinPolicy,
    resolve_connection_policy,
)


class TestClientSpinning:
    def test_starts_at_zero(self):
        state = SpinBitState(EndpointRole.CLIENT, SpinPolicy.SPIN)
        assert state.outgoing_value() is False

    def test_inverts_received_value(self):
        state = SpinBitState(EndpointRole.CLIENT, SpinPolicy.SPIN)
        state.on_packet_received(0, False)
        assert state.outgoing_value() is True
        state.on_packet_received(1, True)
        assert state.outgoing_value() is False


class TestServerReflection:
    def test_reflects_received_value(self):
        state = SpinBitState(EndpointRole.SERVER, SpinPolicy.SPIN)
        state.on_packet_received(0, True)
        assert state.outgoing_value() is True
        state.on_packet_received(1, False)
        assert state.outgoing_value() is False


class TestHighestPacketNumberRule:
    def test_reordered_packet_ignored(self):
        """A late packet with a lower pn must not move the state (Fig 1b
        only corrupts observers, not endpoints)."""
        state = SpinBitState(EndpointRole.SERVER, SpinPolicy.SPIN)
        state.on_packet_received(5, True)
        state.on_packet_received(3, False)  # reordered straggler
        assert state.outgoing_value() is True
        assert state.largest_received_pn == 5

    def test_duplicate_pn_ignored(self):
        state = SpinBitState(EndpointRole.CLIENT, SpinPolicy.SPIN)
        state.on_packet_received(2, True)
        state.on_packet_received(2, False)
        assert state.outgoing_value() is False  # still inverting the pn-2 value


class TestDisablingPolicies:
    def test_always_zero(self):
        state = SpinBitState(EndpointRole.SERVER, SpinPolicy.ALWAYS_ZERO)
        state.on_packet_received(0, True)
        assert state.outgoing_value() is False

    def test_always_one(self):
        state = SpinBitState(EndpointRole.SERVER, SpinPolicy.ALWAYS_ONE)
        assert state.outgoing_value() is True

    def test_grease_per_connection_is_constant(self):
        state = SpinBitState(
            EndpointRole.SERVER, SpinPolicy.GREASE_PER_CONNECTION, derive_rng(3, "g")
        )
        values = {state.outgoing_value() for _ in range(20)}
        assert len(values) == 1

    def test_grease_per_packet_varies(self):
        state = SpinBitState(
            EndpointRole.SERVER, SpinPolicy.GREASE_PER_PACKET, derive_rng(4, "g")
        )
        values = {state.outgoing_value() for _ in range(64)}
        assert values == {False, True}

    def test_grease_requires_rng(self):
        with pytest.raises(ValueError):
            SpinBitState(EndpointRole.SERVER, SpinPolicy.GREASE_PER_PACKET)


class TestDeploymentConfig:
    def test_expected_spin_share(self):
        config = SpinDeploymentConfig(SpinPolicy.SPIN, disable_one_in_n=16)
        assert config.expected_spin_share() == pytest.approx(15 / 16)
        assert config.ever_spins

    def test_non_spinning_share_is_zero(self):
        config = SpinDeploymentConfig(SpinPolicy.ALWAYS_ZERO)
        assert config.expected_spin_share() == 0.0
        assert not config.ever_spins

    def test_disabled_policy_must_not_participate(self):
        with pytest.raises(ValueError):
            SpinDeploymentConfig(SpinPolicy.SPIN, disabled_policy=SpinPolicy.SPIN)

    def test_resolve_policy_respects_one_in_n(self):
        """Over many connections roughly 1/16 must be disabled (RFC 9000
        'MUST ... at least one in every 16')."""
        config = SpinDeploymentConfig(SpinPolicy.SPIN, disable_one_in_n=16)
        rng = derive_rng(77, "resolve")
        n = 8000
        disabled = sum(
            1
            for _ in range(n)
            if resolve_connection_policy(config, rng) is SpinPolicy.ALWAYS_ZERO
        )
        assert n / 16 * 0.7 < disabled < n / 16 * 1.35

    def test_resolve_policy_without_disable(self):
        config = SpinDeploymentConfig(SpinPolicy.SPIN, disable_one_in_n=None)
        rng = derive_rng(78, "resolve")
        assert all(
            resolve_connection_policy(config, rng) is SpinPolicy.SPIN
            for _ in range(100)
        )

    def test_non_participating_policy_always_returned(self):
        config = SpinDeploymentConfig(SpinPolicy.GREASE_PER_CONNECTION)
        rng = derive_rng(79, "resolve")
        assert resolve_connection_policy(config, rng) is SpinPolicy.GREASE_PER_CONNECTION


@given(
    packets=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
        min_size=1,
        max_size=50,
    ),
    role=st.sampled_from([EndpointRole.CLIENT, EndpointRole.SERVER]),
)
def test_state_depends_only_on_highest_pn_property(packets, role):
    """The outgoing value is a function of the highest-pn packet alone,
    regardless of arrival order of the others."""
    state = SpinBitState(role, SpinPolicy.SPIN)
    for pn, spin in packets:
        state.on_packet_received(pn, spin)

    best_pn, best_spin = max(
        ((pn, spin) for pn, spin in packets), key=lambda item: item[0]
    )
    # First occurrence wins among duplicates of the highest pn.
    for pn, spin in packets:
        if pn == best_pn:
            best_spin = spin
            break
    expected = (not best_spin) if role is EndpointRole.CLIENT else best_spin
    assert state.outgoing_value() == expected
