"""The Valid Edge Counter extension (De Vaere et al.)."""

import pytest

from repro.core.vec import VecObserver, VecSenderState


class TestSenderState:
    def test_non_edge_packets_carry_zero(self):
        state = VecSenderState()
        assert state.vec_for_outgoing(False) >= 1  # first packet is an edge
        assert state.vec_for_outgoing(False) == 0
        assert state.vec_for_outgoing(False) == 0

    def test_edge_increments_received_vec(self):
        state = VecSenderState()
        state.on_packet_received(0, True, 1)  # peer edge with VEC 1
        assert state.vec_for_outgoing(False) == 2  # first outgoing: edge
        state.on_packet_received(1, False, 2)
        assert state.vec_for_outgoing(True) == 3

    def test_saturates_at_three(self):
        state = VecSenderState()
        state.on_packet_received(0, True, 3)
        assert state.vec_for_outgoing(True) == 3  # min(3 + 1, 3)

    def test_reordered_packet_does_not_update(self):
        state = VecSenderState()
        state.on_packet_received(5, True, 2)
        state.on_packet_received(2, False, 0)  # lower pn: ignored
        # The first outgoing packet is an edge; its VEC builds on the
        # pn-5 edge counter (2 + 1), not on the ignored straggler.
        assert state.vec_for_outgoing(False) == 3


class TestVecObserver:
    def test_only_marked_edges_counted(self):
        observer = VecObserver(threshold=3)
        observer.on_packet(0.0, 3)
        observer.on_packet(10.0, 0)  # not an edge at the sender
        observer.on_packet(40.0, 3)
        assert observer.rtts_ms() == [40.0]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            VecObserver(threshold=0)
        with pytest.raises(ValueError):
            VecObserver(threshold=4)

    def test_reordering_robustness_scenario(self):
        """A straggler packet (spin flip at the observer, but VEC 0)
        cannot fabricate an ultra-short measurement, unlike the raw
        spin observer in test_observer.py."""
        observer = VecObserver(threshold=3)
        events = [
            (0.0, 3),    # valid edge
            (30.0, 0),
            (60.0, 3),   # valid edge (one RTT later)
            (61.0, 0),   # straggler with a spin flip, VEC 0
            (120.0, 3),  # valid edge
        ]
        for time_ms, vec in events:
            observer.on_packet(time_ms, vec)
        rtts = observer.rtts_ms()
        assert rtts == [60.0, 60.0]
        assert min(rtts) >= 30.0


class TestEndToEndLoop:
    def test_vec_ramps_up_over_spin_cycles(self):
        """Simulate the counter around the loop: client edge 1, server
        reflects 2, client 3, then saturation."""
        client = VecSenderState()
        server = VecSenderState()
        pn_client = 0
        pn_server = 0

        # Client sends its first 1-RTT packet: an edge with VEC 1.
        vec_c = client.vec_for_outgoing(False)
        assert vec_c == 1
        server.on_packet_received(pn_client, False, vec_c)
        pn_client += 1

        # Server reflects: its first outgoing is an edge, VEC 1 + 1 = 2.
        vec_s = server.vec_for_outgoing(False)
        assert vec_s == 2
        client.on_packet_received(pn_server, False, vec_s)
        pn_server += 1

        # Client toggles: edge with VEC 3.
        vec_c = client.vec_for_outgoing(True)
        assert vec_c == 3
        server.on_packet_received(pn_client, True, vec_c)

        # From here on every genuine edge carries the saturated value.
        assert server.vec_for_outgoing(True) == 3
