"""The measurement-as-a-service plane (spool, indexer, daemon, API)."""

import io
import json
import threading
import urllib.error
import urllib.request
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.service import (
    CampaignDaemon,
    Scheduler,
    ServiceConfig,
    ServiceState,
    SimulatedClock,
    SpoolStore,
    WeekIndexer,
    build_server,
)

CONFIG = ServiceConfig(
    seed=77,
    czds_domains=140,
    toplist_domains=40,
    first_week="cw19-2023",
    last_week="cw20-2023",
)


def run_daemon(directory) -> CampaignDaemon:
    daemon = CampaignDaemon(directory, CONFIG)
    daemon.run_once()
    return daemon


def index_bytes(indexer: WeekIndexer) -> dict[str, bytes]:
    """Every summary file's bytes, plus the ledger — the identity probe."""
    files = {
        path.name: path.read_bytes()
        for path in indexer.directory.glob("week-*.json")
    }
    files["ledger.json"] = (indexer.directory / "ledger.json").read_bytes()
    return files


class TestSpool:
    def test_submit_is_content_addressed_and_deduped(self, tmp_path):
        spool = SpoolStore(tmp_path / "spool")
        first = spool.submit_bytes(b"payload-a", source="test")
        again = spool.submit_bytes(b"payload-a", source="test-again")
        other = spool.submit_bytes(b"payload-b", source="test")
        assert first.new and not again.new and other.new
        assert first.fingerprint == again.fingerprint != other.fingerprint
        assert len(spool.artifacts()) == 2

    def test_artifacts_survive_a_damaged_manifest(self, tmp_path):
        spool = SpoolStore(tmp_path / "spool")
        entry = spool.submit_bytes(b"payload", source="test")
        spool.manifest_path.write_text("{torn json\n", encoding="utf-8")
        listed = spool.artifacts()
        assert [item.fingerprint for item in listed] == [entry.fingerprint]


class TestIndexerIdempotence:
    @pytest.fixture(scope="class")
    def daemon(self, tmp_path_factory):
        return run_daemon(tmp_path_factory.mktemp("svc"))

    def test_duplicate_fold_is_a_noop(self, daemon):
        before = index_bytes(daemon.indexer)
        for entry in daemon.spool.artifacts():
            assert daemon.indexer.fold_artifact(entry.path, entry.fingerprint) is False
        assert index_bytes(daemon.indexer) == before

    def test_duplicate_submission_is_a_noop(self, daemon, tmp_path):
        before = index_bytes(daemon.indexer)
        entry = daemon.spool.artifacts()[0]
        copy = tmp_path / "copy.cbr"
        copy.write_bytes(entry.path.read_bytes())
        resubmitted = daemon.spool.submit_file(copy)
        assert not resubmitted.new
        assert daemon.indexer.fold_pending(daemon.spool) == []
        assert index_bytes(daemon.indexer) == before

    def test_shuffled_submission_order_is_byte_identical(
        self, daemon, tmp_path
    ):
        entries = daemon.spool.artifacts()
        assert len(entries) >= 2
        for name, order in (("fwd", entries), ("rev", list(reversed(entries)))):
            indexer = WeekIndexer(tmp_path / name)
            for entry in order:
                assert indexer.fold_artifact(entry.path, entry.fingerprint)
            assert index_bytes(indexer) == index_bytes(daemon.indexer), name

    def test_crash_mid_fold_then_resume_is_byte_identical(
        self, daemon, tmp_path
    ):
        """Kill the fold after the first week file; the resumed fold must
        finish the remaining weeks without double-counting the first."""
        entry = daemon.spool.artifacts()[0]
        reference = WeekIndexer(tmp_path / "reference")
        assert reference.fold_artifact(entry.path, entry.fingerprint)

        class Crash(RuntimeError):
            pass

        def crash_after_first_week(event):
            if event == "week-written":
                raise Crash(event)

        crashed = WeekIndexer(
            tmp_path / "crashed", fault_hook=crash_after_first_week
        )
        with pytest.raises(Crash):
            crashed.fold_artifact(entry.path, entry.fingerprint)
        assert entry.fingerprint not in crashed.ledger()

        resumed = WeekIndexer(tmp_path / "crashed")  # no hook: clean restart
        assert resumed.fold_artifact(entry.path, entry.fingerprint)
        assert index_bytes(resumed) == index_bytes(reference)


class TestDaemon:
    def test_run_once_resumes_from_the_spool_manifest(self, tmp_path):
        daemon = run_daemon(tmp_path / "svc")
        assert daemon.pending_weeks() == []
        again = CampaignDaemon(tmp_path / "svc", CONFIG)
        status = again.run_once()
        assert status["scanned_weeks"] == []
        assert status["folded_artifacts"] == []
        assert status["indexed_weeks"] == ["cw19-2023", "cw20-2023"]

    def test_scheduler_paces_ticks_on_the_simulated_clock(self, tmp_path):
        daemon = CampaignDaemon(
            tmp_path / "svc",
            ServiceConfig(
                seed=5,
                czds_domains=60,
                toplist_domains=0,
                first_week="cw20-2023",
                last_week="cw20-2023",
            ),
        )
        clock = SimulatedClock()
        scheduler = Scheduler(daemon, interval_s=300.0, clock=clock)
        scheduler.run(max_ticks=3)
        assert scheduler.ticks == 3
        assert len(clock.sleeps) == 2  # no sleep after the final tick
        assert all(0.0 <= s <= 300.0 for s in clock.sleeps)
        assert daemon.indexer.weeks() == ["cw20-2023"]


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A folded service directory plus a live API server."""
    daemon = run_daemon(tmp_path_factory.mktemp("svc-api"))
    state = ServiceState(daemon.spool, daemon.indexer)
    server = build_server(state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    yield daemon, f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()


def http_get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestApi:
    def test_healthz_and_weeks(self, service):
        _, base = service
        status, body = http_get(f"{base}/v1/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["weeks"] == ["cw19-2023", "cw20-2023"]
        status, body = http_get(f"{base}/v1/weeks")
        assert json.loads(body)["weeks"] == ["cw19-2023", "cw20-2023"]

    def test_adoption_and_compliance_counters_add_up(self, service):
        _, base = service
        weekly = [
            json.loads(http_get(f"{base}/v1/adoption?week={week}")[1])
            for week in ("cw19-2023", "cw20-2023")
        ]
        merged = json.loads(http_get(f"{base}/v1/adoption")[1])
        assert merged["week"] == "all"
        assert merged["connections_total"] == sum(
            entry["connections_total"] for entry in weekly
        )
        compliance = json.loads(http_get(f"{base}/v1/compliance")[1])
        assert (
            sum(compliance["behaviours"].values())
            == merged["connections_total"]
        )

    def test_analyze_is_byte_identical_to_the_cli(self, service, tmp_path):
        """The tentpole acceptance check: /v1/analyze must serve the same
        bytes ``repro analyze`` prints over the union of the artifacts."""
        daemon, base = service
        from repro.artifacts import open_record_batches, write_records

        records = []
        for entry in daemon.spool.artifacts():
            with open_record_batches(str(entry.path)) as source:
                records.extend(source.records())
        union = tmp_path / "union.cbr"
        write_records(records, str(union))
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main(["analyze", str(union)]) == 0
        cli_text = buffer.getvalue()
        api_text = json.loads(http_get(f"{base}/v1/analyze")[1])["text"]
        assert api_text + "\n" == cli_text

    def test_analyze_single_week_matches_where_filter(self, service, tmp_path):
        daemon, base = service
        from repro.artifacts import open_record_batches, write_records

        records = []
        for entry in daemon.spool.artifacts():
            with open_record_batches(str(entry.path)) as source:
                records.extend(source.records())
        union = tmp_path / "union.cbr"
        write_records(records, str(union))
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main(
                [
                    "analyze", str(union), "--section", "versions",
                    "--where", "week == cw19-2023",
                ]
            ) == 0
        cli_text = buffer.getvalue()
        payload = json.loads(
            http_get(f"{base}/v1/analyze?week=cw19-2023&section=versions")[1]
        )
        assert payload["text"] + "\n" == cli_text

    def test_domain_endpoint_matches_repro_query(self, service):
        daemon, base = service
        entry = daemon.spool.artifacts()[0]
        from repro.artifacts import open_record_batches

        with open_record_batches(str(entry.path)) as source:
            name = next(source.records()).domain
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main(["query", "domain", name, str(entry.path)]) == 0
        cli_lines = buffer.getvalue().splitlines()
        status, body = http_get(f"{base}/v1/domain/{name}")
        assert status == 200
        api_lines = body.decode("utf-8").splitlines()
        # The API aggregates across every spooled artifact; the CLI saw
        # one file, so its lines must be a subsequence prefix per artifact.
        assert cli_lines
        for line in cli_lines:
            assert line in api_lines

    def test_post_seeds_roundtrip(self, service):
        daemon, base = service
        payload = json.dumps(
            {"domains": ["tranco-a.example", "tranco-b.example", "tranco-a.example"]}
        ).encode("utf-8")
        request = urllib.request.Request(
            f"{base}/v1/seeds", data=payload, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            result = json.loads(response.read())
        assert result["accepted"] == 2
        stored = json.loads(
            (daemon.spool.directory / "seeds.json").read_text(encoding="utf-8")
        )
        assert stored["domains"] == ["tranco-a.example", "tranco-b.example"]

    def test_unknown_endpoint_and_week_are_json_errors(self, service):
        _, base = service
        status, body = http_get(f"{base}/v1/nope")
        assert status == 404 and "error" in json.loads(body)
        status, body = http_get(f"{base}/v1/adoption?week=cw01-1999")
        assert status == 404 and "error" in json.loads(body)


class TestServiceCli:
    def test_run_once_submit_and_index_roundtrip(self, tmp_path, capsys):
        service_dir = tmp_path / "svc"
        args = [
            "--dir", str(service_dir),
            "--seed", "77",
            "--czds", "140",
            "--toplist", "40",
            "--first-week", "cw19-2023",
            "--last-week", "cw20-2023",
        ]
        assert main(["service", "run-once", *args]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["scanned_weeks"] == ["cw19-2023", "cw20-2023"]
        assert status["pending_weeks"] == 0

        # Re-submitting a spooled artifact through the CLI is a no-op.
        artifact = next((service_dir / "spool" / "artifacts").glob("*.cbr"))
        assert main(
            ["service", "submit", "--dir", str(service_dir), str(artifact)]
        ) == 0
        captured = capsys.readouterr()
        assert "duplicate payload" in captured.err
        assert json.loads(captured.out)["folded_artifacts"] == []

        assert main(["service", "index", "--dir", str(service_dir)]) == 0
        assert json.loads(capsys.readouterr().out)["folded_artifacts"] == []

    def test_bad_week_label_is_a_clean_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "service", "run-once",
                    "--dir", str(tmp_path / "svc"),
                    "--first-week", "definitely-not-a-week",
                ]
            )
        message = str(excinfo.value)
        assert message.startswith("repro: error:")
        assert not (tmp_path / "svc").exists()  # failed before touching disk

    def test_empty_population_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "service", "run-once",
                    "--dir", str(tmp_path / "svc"),
                    "--czds", "0",
                    "--toplist", "0",
                ]
            )
        assert str(excinfo.value).startswith("repro: error:")
