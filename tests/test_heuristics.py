"""RFC 9312 observer heuristics."""

import pytest

from repro.core.heuristics import (
    DynamicThresholdFilter,
    PacketNumberFilter,
    StaticThresholdFilter,
    apply_filters,
)
from repro.core.observer import SpinEdge, SpinObserver


class TestStaticThreshold:
    def test_drops_subthreshold_samples(self):
        filt = StaticThresholdFilter(min_rtt_ms=2.0)
        assert filt.filter_rtts([0.5, 2.0, 30.0]) == [2.0, 30.0]

    def test_zero_threshold_keeps_everything(self):
        assert StaticThresholdFilter(0.0).filter_rtts([0.1]) == [0.1]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            StaticThresholdFilter(-1.0)

    def test_apply_filters_chain(self):
        assert apply_filters([0.5, 40.0], StaticThresholdFilter(1.0)) == [40.0]
        assert apply_filters([0.5, 40.0]) == [0.5, 40.0]


class TestDynamicThreshold:
    def _edges(self, times):
        return [SpinEdge(t, i, i % 2 == 0) for i, t in enumerate(times)]

    def test_rejects_edges_inside_hold_time(self):
        # Steady 40 ms cycles, then a 1 ms spurious edge pair.
        times = [0.0, 40.0, 80.0, 81.0, 120.0]
        filt = DynamicThresholdFilter(fraction=0.125)
        accepted = filt.filter_edges(self._edges(times))
        assert [edge.time_ms for edge in accepted] == [0.0, 40.0, 80.0, 120.0]

    def test_rtts_from_filtered_edges(self):
        times = [0.0, 40.0, 80.0, 81.0, 120.0]
        filt = DynamicThresholdFilter(fraction=0.125)
        assert filt.filter_rtts_from_edges(self._edges(times)) == [40.0, 40.0, 40.0]

    def test_accepts_all_regular_edges(self):
        times = [0.0, 30.0, 60.0, 90.0]
        filt = DynamicThresholdFilter(fraction=0.25)
        assert len(filt.filter_edges(self._edges(times))) == 4

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            DynamicThresholdFilter(fraction=0.0)
        with pytest.raises(ValueError):
            DynamicThresholdFilter(fraction=1.0)


class TestPacketNumberFilter:
    def test_regressing_packets_dropped(self):
        packets = [(0.0, 0, False), (10.0, 2, True), (11.0, 1, False), (20.0, 3, True)]
        kept = PacketNumberFilter().filter_packets(packets)
        assert [pn for _, pn, _ in kept] == [0, 2, 3]

    def test_equivalent_to_endpoint_rule(self):
        """After the filter, received-order edges match packet-number-
        sorted edges: the Fig 1b spurious cycle disappears."""
        packets = [
            (0.0, 0, False),
            (30.0, 1, False),
            (60.0, 3, True),
            (61.0, 2, False),  # straggler
            (90.0, 4, True),
            (120.0, 5, False),
        ]
        filtered = PacketNumberFilter().filter_packets(packets)
        observer = SpinObserver()
        for time_ms, pn, spin in filtered:
            observer.on_packet(time_ms, pn, spin)
        obs = observer.observation()
        assert obs.rtts_received_ms == obs.rtts_sorted_ms
        assert min(obs.rtts_received_ms) >= 30.0
