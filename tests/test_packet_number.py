"""Packet-number truncation and reconstruction (RFC 9000 Appendix A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quic.packet_number import (
    decode_packet_number,
    encode_packet_number,
    packet_number_length,
)


class TestRfcExamples:
    def test_appendix_a3_example(self):
        # RFC 9000 A.3: largest 0xa82f30ea, truncated 0x9b32 in 2 bytes
        # decodes to 0xa82f9b32.
        assert decode_packet_number(0x9B32, 2, 0xA82F30EA) == 0xA82F9B32

    def test_appendix_a2_example_length(self):
        # RFC 9000 A.2: first pn 0xac5c02 after largest acked 0xabe8b3
        # needs 16 bits.
        assert packet_number_length(0xAC5C02, 0xABE8B3) == 2


class TestEncoding:
    def test_first_packet_uses_one_byte(self):
        assert encode_packet_number(0, None) == b"\x00"

    def test_length_grows_with_gap(self):
        assert len(encode_packet_number(300, None)) >= 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_packet_number(-1, None)


class TestDecoding:
    def test_without_prior_state(self):
        assert decode_packet_number(7, 1, None) == 7

    def test_wraparound_forward(self):
        # Largest 255, truncated 0x00 in one byte: the next window.
        assert decode_packet_number(0x00, 1, 255) == 256

    def test_no_wrap_when_close(self):
        assert decode_packet_number(0x05, 1, 3) == 5

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            decode_packet_number(0, 5, None)

    def test_truncated_value_too_large_for_length(self):
        with pytest.raises(ValueError):
            decode_packet_number(0x1FF, 1, None)


@given(
    largest_acked=st.integers(min_value=0, max_value=2**40),
    gap=st.integers(min_value=1, max_value=2**14),
)
def test_roundtrip_against_receiver_state(largest_acked, gap):
    """Encoding relative to the ack state always decodes correctly.

    The receiver's ``largest_pn`` may trail the sender's
    ``largest_acked`` slightly; RFC 9000 guarantees correct recovery as
    long as the encoding window covers the unacknowledged range.
    """
    full_pn = largest_acked + gap
    encoded = encode_packet_number(full_pn, largest_acked)
    truncated = int.from_bytes(encoded, "big")
    decoded = decode_packet_number(truncated, len(encoded), full_pn - 1)
    assert decoded == full_pn
