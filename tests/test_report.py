"""Text rendering of tables and figures."""

from conftest import make_connection_record
from repro._util.stats import Histogram
from repro.analysis.accuracy import accuracy_study
from repro.analysis.asorg import organization_table
from repro.analysis.compliance import ComplianceHistogram, rfc_reference_shares
from repro.analysis.report import (
    render_compliance_histogram,
    render_histogram,
    render_org_table,
    render_series_summary,
    render_table,
)
from repro.internet.asdb import build_default_asdb


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Columns align: the separator is as wide as the widest cell.
        assert lines[1].split("  ")[0] == "---"


class TestRenderHistogram:
    def test_contains_bins_and_tails(self):
        hist = Histogram(edges=(0.0, 10.0, 20.0))
        hist.extend([5.0, 15.0, 25.0, -3.0])
        text = render_histogram(hist)
        assert "< 0" in text
        assert ">= 20" in text
        assert "[0, 10)" in text
        assert "25.0 %" in text

    def test_empty_histogram_safe(self):
        text = render_histogram(Histogram(edges=(0.0, 1.0)))
        assert "0.0 %" in text


class TestRenderSeries:
    def test_headline_numbers_present(self):
        record = make_connection_record(spin_rtts=[300.0], stack_rtts=[50.0])
        series = accuracy_study([record]).spin_received
        text = render_series_summary(series)
        assert "Spin (R)" in text
        assert "overestimating: 100.0 %" in text
        assert "mapped ratio histogram" in text


class TestRenderOrgTable:
    def test_other_row_last(self):
        asdb = build_default_asdb()
        table = organization_table([make_connection_record()], asdb, top_n=1)
        text = render_org_table(table)
        assert text.splitlines()[-1].lstrip().startswith("")
        assert "<other>" in text


class TestRenderCompliance:
    def test_weeks_and_references_listed(self):
        histogram = ComplianceHistogram(
            n_weeks=3,
            considered_domains=10,
            observed_shares=[0.2, 0.3, 0.5],
            rfc9000_shares=rfc_reference_shares(3, 16),
            rfc9312_shares=rfc_reference_shares(3, 8),
        )
        text = render_compliance_histogram(histogram)
        assert "RFC9000" in text and "RFC9312" in text
        assert "domains considered: 10" in text
        assert text.count("%") >= 9
