"""The zgrab2-equivalent scanner."""

import pytest

from repro.core.classify import SpinBehaviour
from repro.internet.population import ListGroup, PopulationConfig, build_population
from repro.web.scanner import ScanConfig, Scanner


@pytest.fixture(scope="module")
def scan_setup():
    population = build_population(
        PopulationConfig(toplist_domains=150, czds_domains=700, seed=11)
    )
    scanner = Scanner(population, ScanConfig(qlog_sample_rate=0.25))
    dataset = scanner.scan(week_label="cw20-2023", ip_version=4)
    return population, dataset


class TestScanShape:
    def test_one_result_per_domain(self, scan_setup):
        population, dataset = scan_setup
        assert len(dataset.results) == len(population.domains)

    def test_flags_consistent_with_population(self, scan_setup):
        population, dataset = scan_setup
        by_name = {d.name: d for d in population.domains}
        for result in dataset.results:
            domain = by_name[result.domain.name]
            assert result.resolved == domain.resolves
            if not domain.resolves:
                assert result.connections == []
            if result.quic_support:
                assert domain.quic_enabled

    def test_resolved_ip_present_even_without_quic(self, scan_setup):
        _, dataset = scan_setup
        resolved_no_quic = [
            r for r in dataset.results if r.resolved and not r.quic_support
        ]
        assert resolved_no_quic
        assert all(r.resolved_ip is not None for r in resolved_no_quic)

    def test_connection_records_complete(self, scan_setup):
        _, dataset = scan_setup
        for record in dataset.connection_records():
            assert record.host.startswith("www.")
            assert record.ip_version == 4
            assert record.provider_name
            assert isinstance(record.behaviour, SpinBehaviour)
            if record.success:
                assert record.status in (200, 301)
                assert record.server_header

    def test_redirects_create_extra_connections(self, scan_setup):
        _, dataset = scan_setup
        multi = [r for r in dataset.results if len(r.connections) > 1]
        assert multi, "expected some redirect chains"
        for result in multi:
            assert all(c.status == 301 for c in result.connections[:-1])
            assert result.connections[-1].status == 200

    def test_determinism(self, scan_setup):
        population, dataset = scan_setup
        again = Scanner(population, ScanConfig(qlog_sample_rate=0.25)).scan(
            week_label="cw20-2023", ip_version=4
        )
        a = [(r.domain.name, len(r.connections), r.shows_spin_activity) for r in dataset.results]
        b = [(r.domain.name, len(r.connections), r.shows_spin_activity) for r in again.results]
        assert a == b


class TestSpinGroundTruth:
    def test_hyperscaler_connections_never_spin(self, scan_setup):
        _, dataset = scan_setup
        for record in dataset.connection_records():
            if record.provider_name in ("cloudflare", "fastly"):
                assert not record.shows_spin_activity

    def test_some_spin_activity_exists(self, scan_setup):
        _, dataset = scan_setup
        assert any(r.shows_spin_activity for r in dataset.results)

    def test_spinning_connections_mostly_litespeed(self, scan_setup):
        _, dataset = scan_setup
        spinning = [
            c
            for c in dataset.connection_records()
            if c.behaviour is SpinBehaviour.SPIN
        ]
        if len(spinning) < 5:
            pytest.skip("too few spinning connections at this scale")
        litespeed = sum(
            1
            for c in spinning
            if c.server_header in ("LiteSpeed", "imunify360-webshield/1.21")
        )
        assert litespeed / len(spinning) > 0.6


class TestIpv6Scan:
    def test_v6_scans_only_aaaa_domains(self, scan_setup):
        population, _ = scan_setup
        dataset6 = Scanner(population).scan(week_label="cw20-2023", ip_version=6)
        by_name = {d.name: d for d in population.domains}
        for result in dataset6.results:
            domain = by_name[result.domain.name]
            assert result.resolved == (domain.resolves and domain.has_aaaa)
            for connection in result.connections:
                assert connection.ip_version == 6
                assert connection.ip.version == 6


class TestQlogSampling:
    def test_sampled_qlogs_valid(self, scan_setup):
        _, dataset = scan_setup
        sampled = [c for c in dataset.connection_records() if c.qlog is not None]
        assert sampled, "expected sampled qlog documents"
        from repro.qlog.reader import qlog_to_recorder

        recorder = qlog_to_recorder(sampled[0].qlog)
        assert recorder.received
        assert sampled[0].qlog["traces"][0]["common_fields"]["custom_fields"]["domain"]

    def test_no_qlogs_when_rate_zero(self, scan_setup):
        population, _ = scan_setup
        dataset = Scanner(population, ScanConfig(qlog_sample_rate=0.0)).scan()
        assert all(c.qlog is None for c in dataset.connection_records())


class TestWeekEpochs:
    def test_custom_week_labels_accepted(self, scan_setup):
        population, _ = scan_setup
        quic_domains = [d for d in population.domains if d.quic_enabled][:20]
        dataset = Scanner(population).scan(week_label="adhoc", domains=quic_domains)
        assert len(dataset.results) == 20

    def test_different_weeks_differ_somewhere(self, scan_setup):
        """Per-connection 1-in-16 disabling re-rolls every week, so two
        weeks over the same spin-capable domains rarely agree fully."""
        population, _ = scan_setup
        scanner = Scanner(population)
        domains = [d for d in population.domains if d.quic_enabled]
        a = scanner.scan(week_label="cw15-2023", domains=domains)
        b = scanner.scan(week_label="cw16-2023", domains=domains)
        spin_a = [r.shows_spin_activity for r in a.results]
        spin_b = [r.shows_spin_activity for r in b.results]
        if any(spin_a):
            assert spin_a != spin_b or sum(spin_a) == 0
