"""Endpoint internals: ACK machinery, reassembly, duplicates, timers."""

import pytest

from repro._util.rng import derive_rng
from repro.core.spin import EndpointRole, SpinPolicy
from repro.netsim.delays import ConstantDelay, UniformDelay
from repro.netsim.events import Simulator
from repro.netsim.path import PathProfile, duplex_paths
from repro.qlog.recorder import TraceRecorder
from repro.quic.connection import ConnectionConfig, PacketSpace, QuicEndpoint
from repro.quic.connection import _pns_to_ranges
from repro.quic.frames import AckRange
from repro.web.http3 import ResponsePlan, run_exchange


class TestPnsToRanges:
    def test_contiguous(self):
        assert _pns_to_ranges({0, 1, 2}) == (AckRange(0, 2),)

    def test_with_gaps(self):
        ranges = _pns_to_ranges({0, 1, 4, 5, 9})
        assert ranges == (AckRange(9, 9), AckRange(4, 5), AckRange(0, 1))

    def test_single(self):
        assert _pns_to_ranges({7}) == (AckRange(7, 7),)


def build_pair(seed=0, loss=0.0, jitter=None):
    simulator = Simulator()
    rng = derive_rng(seed, "internals")
    recorder = TraceRecorder()
    client = QuicEndpoint(
        simulator, EndpointRole.CLIENT, ConnectionConfig(), SpinPolicy.SPIN,
        derive_rng(seed, "c"), recorder=recorder,
    )
    server = QuicEndpoint(
        simulator, EndpointRole.SERVER, ConnectionConfig(), SpinPolicy.SPIN,
        derive_rng(seed, "s"),
    )
    profile = PathProfile(
        propagation_delay_ms=15.0,
        jitter=jitter or ConstantDelay(0.0),
        loss_probability=loss,
    )
    uplink, downlink = duplex_paths(
        simulator, profile, profile,
        client.receive_datagram, server.receive_datagram, rng,
    )
    client.attach_transport(uplink.send)
    server.attach_transport(downlink.send)
    return simulator, client, server, recorder


class TestHandshakeInternals:
    def test_crypto_reassembly_handles_duplicate_chunks(self):
        """Retransmitted CRYPTO data (overlapping offsets) must not
        corrupt the flight or double-fire the handshake."""
        simulator, client, server, _ = build_pair(seed=3)
        client.connect()
        simulator.run()
        assert client.handshake_confirmed and server.handshake_confirmed

        # Replay the server's whole crypto flight into the client again:
        # everything is deduplicated at the packet and message level.
        confirmed_before = client.handshake_confirmed
        state = client.spaces[PacketSpace.HANDSHAKE]
        message_before = state.crypto_message
        assert confirmed_before and message_before is not None

    def test_duplicate_datagram_recorded_once_processed_once(self):
        simulator, client, server, recorder = build_pair(seed=4)
        captured = []
        original_receive = client.receive_datagram

        def capture_and_receive(data):
            captured.append(data)
            original_receive(data)

        client.receive_datagram = capture_and_receive
        # re-attach transports through the capturing wrapper
        server.transport = lambda data: simulator.schedule(
            15.0, lambda d=data: capture_and_receive(d)
        )
        client.connect()
        simulator.run()
        assert client.handshake_confirmed

        # Deliver the last server datagram once more.
        received_before = len(recorder.received)
        pn_count_before = len(client.spaces[PacketSpace.APPLICATION].received_pns)
        client.receive_datagram = original_receive
        original_receive(captured[-1])
        assert len(recorder.received) > received_before  # recorded again
        assert (
            len(client.spaces[PacketSpace.APPLICATION].received_pns)
            == pn_count_before  # but not re-processed
        )


class TestAckBehaviour:
    def test_ack_ranges_reported_under_loss(self):
        """With loss, the client's ACKs carry multi-range frames and the
        server still completes via retransmission."""
        plan = ResponsePlan(server_header="x", think_time_ms=10.0, write_sizes=(90_000,))
        profile = PathProfile(propagation_delay_ms=15.0, loss_probability=0.06)
        result = run_exchange(
            "www.loss.test", plan, SpinPolicy.SPIN, SpinPolicy.SPIN,
            profile, profile, derive_rng(8, "ackloss"),
        )
        assert result.success
        # The server observed gaps: the client received a non-contiguous
        # pn set at some point (holes from losses).
        pns = sorted(
            e.packet_number for e in result.recorder.received if e.packet_type == "1RTT"
        )
        assert pns == sorted(set(pns))

    def test_delayed_ack_fires_only_once_per_generation(self):
        """A delayed-ACK timer superseded by an immediate ACK must not
        emit a second ACK when it fires."""
        simulator, client, server, recorder = build_pair(seed=6)
        client.connect()
        simulator.run()
        state = client.spaces[PacketSpace.APPLICATION]
        # After the exchange settles, no pending ack-eliciting packets
        # remain unacknowledged on the client side.
        assert state.pending_ack_eliciting == 0

    def test_ack_delay_reported_to_peer(self):
        """Server ACK delay shows up in the client's RTT samples as a
        subtracted component (adjusted <= latest)."""
        plan = ResponsePlan(server_header="x", think_time_ms=10.0, write_sizes=(30_000,))
        profile = PathProfile(propagation_delay_ms=15.0, jitter=ConstantDelay(0.0))
        result = run_exchange(
            "www.ackdelay.test", plan, SpinPolicy.SPIN, SpinPolicy.SPIN,
            profile, profile, derive_rng(9, "ackdelay"),
        )
        for sample in result.recorder.rtt_samples:
            assert sample.adjusted_rtt_ms <= sample.latest_rtt_ms + 1e-9


class TestCongestionWindow:
    def test_slow_start_grows_flights(self):
        plan = ResponsePlan(server_header="x", think_time_ms=10.0, write_sizes=(260_000,))
        profile = PathProfile(propagation_delay_ms=20.0, jitter=ConstantDelay(0.0))
        result = run_exchange(
            "www.cwnd.test", plan, SpinPolicy.SPIN, SpinPolicy.SPIN,
            profile, profile, derive_rng(10, "cwnd"),
        )
        data_events = [
            e for e in result.recorder.received
            if e.spin_bit is not None and e.size_bytes > 600
        ]
        # Group arrivals into flights by >10 ms gaps.
        flights = [[data_events[0]]]
        for event in data_events[1:]:
            if event.time_ms - flights[-1][-1].time_ms > 10.0:
                flights.append([event])
            else:
                flights[-1].append(event)
        sizes = [len(flight) for flight in flights]
        assert sizes[0] <= 12
        assert max(sizes) > sizes[0]  # the window actually grew

    def test_loss_halves_window(self):
        simulator, client, server, _ = build_pair(seed=11)
        client.connect()
        simulator.run()
        before = server._congestion_window
        # Simulate a PTO-detected loss on the server's app space.
        state = server.spaces[PacketSpace.APPLICATION]
        if state.sent:
            pn, info = next(iter(state.sent.items()))
            info.acked = False
            info.retransmitted = False
            server.closed = False
            server._pto_fired(PacketSpace.APPLICATION, pn, retries=0)
            assert server._congestion_window <= max(2, before // 2) or before <= 2
