"""Transport parameters: codec and endpoint negotiation effects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.rng import derive_rng
from repro.core.spin import SpinPolicy
from repro.netsim.delays import ConstantDelay
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.quic.transport_params import (
    TransportParameters,
    decode_transport_parameters,
)
from repro.web.http3 import ResponsePlan, run_exchange


class TestCodec:
    def test_roundtrip_defaults(self):
        params = TransportParameters()
        assert decode_transport_parameters(params.encode()) == params

    def test_roundtrip_custom(self):
        params = TransportParameters(
            max_idle_timeout_ms=60_000,
            ack_delay_exponent=8,
            max_ack_delay_ms=40,
            active_connection_id_limit=8,
        )
        decoded = decode_transport_parameters(params.encode())
        assert decoded.ack_delay_exponent == 8
        assert decoded.max_ack_delay_ms == 40

    def test_unknown_parameters_preserved(self):
        params = TransportParameters(unknown=((0x1B66, b"\xde\xad"),))
        decoded = decode_transport_parameters(params.encode())
        assert decoded.unknown == ((0x1B66, b"\xde\xad"),)

    def test_truncated_rejected(self):
        data = TransportParameters().encode()
        with pytest.raises(ValueError):
            decode_transport_parameters(data[:-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportParameters(ack_delay_exponent=21)
        with pytest.raises(ValueError):
            TransportParameters(max_ack_delay_ms=2**14)

    def test_missing_parameters_take_defaults(self):
        assert decode_transport_parameters(b"") == TransportParameters()


@given(
    exponent=st.integers(min_value=0, max_value=20),
    max_delay=st.integers(min_value=0, max_value=2**14 - 1),
    idle=st.integers(min_value=0, max_value=2**30),
)
def test_codec_roundtrip_property(exponent, max_delay, idle):
    params = TransportParameters(
        max_idle_timeout_ms=idle,
        ack_delay_exponent=exponent,
        max_ack_delay_ms=max_delay,
    )
    assert decode_transport_parameters(params.encode()) == params


class TestNegotiation:
    def _exchange(self, server_config):
        plan = ResponsePlan(
            server_header="Caddy", think_time_ms=20.0, write_sizes=(30_000,)
        )
        profile = PathProfile(propagation_delay_ms=20.0, jitter=ConstantDelay(0.0))
        return run_exchange(
            "www.tp.test",
            plan,
            SpinPolicy.SPIN,
            SpinPolicy.SPIN,
            profile,
            profile,
            derive_rng(5, "tp"),
            server_config=server_config,
        )

    def test_peer_params_learned_on_both_sides(self):
        result = self._exchange(ConnectionConfig(ack_delay_exponent=8))
        assert result.client.peer_params is not None
        assert result.client.peer_params.ack_delay_exponent == 8
        assert result.server.peer_params is not None
        assert result.server.peer_params.ack_delay_exponent == 3

    def test_nondefault_exponent_keeps_rtt_estimates_honest(self):
        """A server announcing exponent 8 has its ACK delays decoded
        correctly, so the client's adjusted RTTs stay near the path RTT."""
        result = self._exchange(
            ConnectionConfig(ack_delay_exponent=8, max_ack_delay_ms=25.0)
        )
        assert result.success
        for sample in result.recorder.stack_rtts_ms():
            assert 38.0 <= sample <= 70.0

    def test_peer_max_ack_delay_drives_estimator_clamp(self):
        result = self._exchange(ConnectionConfig(max_ack_delay_ms=60.0))
        assert result.client.rtt_estimator.max_ack_delay_ms == 60.0


class TestBandwidth:
    def test_serialization_delay(self):
        profile = PathProfile(bandwidth_mbps=10.0)
        # 1250 bytes at 10 Mbit/s = 1 ms.
        assert profile.serialization_delay_ms(1250) == pytest.approx(1.0)
        assert PathProfile().serialization_delay_ms(1250) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PathProfile(bandwidth_mbps=0.0)

    def test_constrained_link_slows_transfer(self):
        plan = ResponsePlan(server_header="x", think_time_ms=10.0, write_sizes=(120_000,))
        fast = PathProfile(propagation_delay_ms=20.0, jitter=ConstantDelay(0.0))
        slow = PathProfile(
            propagation_delay_ms=20.0,
            jitter=ConstantDelay(0.0),
            bandwidth_mbps=2.0,
        )
        up = PathProfile(propagation_delay_ms=20.0, jitter=ConstantDelay(0.0))

        def run(downlink):
            return run_exchange(
                "www.bw.test",
                plan,
                SpinPolicy.SPIN,
                SpinPolicy.SPIN,
                up,
                downlink,
                derive_rng(2, "bw"),
            )

        fast_result = run(fast)
        slow_result = run(slow)
        assert fast_result.success and slow_result.success
        fast_end = max(e.time_ms for e in fast_result.recorder.received)
        slow_end = max(e.time_ms for e in slow_result.recorder.received)
        # 120 kB at 2 Mbit/s needs ~480 ms of serialization alone.
        assert slow_end > fast_end + 300.0
