"""Statistics utilities: histograms, binomials, percentiles, choices."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.rng import derive_rng, fork_rng
from repro._util.stats import (
    Histogram,
    binomial_pmf,
    mean,
    percentile,
    weighted_choice,
)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_matches_numpy(self):
        import numpy as np

        values = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6]
        for q in (10, 25, 50, 75, 90):
            assert percentile(values, q) == pytest.approx(np.percentile(values, q))

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestBinomial:
    def test_sums_to_one(self):
        total = sum(binomial_pmf(k, 12, 15 / 16) for k in range(13))
        assert total == pytest.approx(1.0)

    def test_rfc9000_all_weeks_value(self):
        # P[spin in all 12 weekly one-shots] with 1-in-16 disabling.
        assert binomial_pmf(12, 12, 15 / 16) == pytest.approx((15 / 16) ** 12)

    def test_out_of_support(self):
        assert binomial_pmf(-1, 5, 0.5) == 0.0
        assert binomial_pmf(6, 5, 0.5) == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            binomial_pmf(1, 2, 1.5)


class TestWeightedChoice:
    def test_distribution(self):
        rng = derive_rng(5, "wc")
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert 0.70 < counts["a"] / 4000 < 0.80

    def test_zero_weight_never_chosen(self):
        rng = derive_rng(6, "wc")
        assert all(
            weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a" for _ in range(200)
        )

    def test_validation(self):
        rng = derive_rng(7, "wc")
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [-1.0])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a", "b"], [0.0, 0.0])


class TestHistogram:
    def test_binning(self):
        hist = Histogram(edges=(0.0, 10.0, 20.0))
        hist.extend([5.0, 15.0, 15.0, -1.0, 25.0])
        assert hist.counts == [1, 2]
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 5

    def test_boundary_goes_to_upper_bin(self):
        hist = Histogram(edges=(0.0, 10.0, 20.0))
        hist.add(10.0)
        assert hist.counts == [0, 1]

    def test_fractions_include_tails_in_norm(self):
        hist = Histogram(edges=(0.0, 1.0))
        hist.extend([0.5, 5.0])
        assert hist.fractions() == [0.5]

    def test_fraction_below(self):
        hist = Histogram(edges=(0.0, 10.0, 20.0))
        hist.extend([-5.0, 5.0, 15.0])
        assert hist.fraction_below(10.0) == pytest.approx(2 / 3)
        assert hist.fraction_at_least(10.0) == pytest.approx(1 / 3)

    def test_fraction_below_requires_edge(self):
        hist = Histogram(edges=(0.0, 10.0))
        with pytest.raises(ValueError):
            hist.fraction_below(5.0)

    def test_dict_roundtrip(self):
        hist = Histogram(edges=(0.0, 1.0, 2.0))
        hist.extend([0.5, 1.5, 9.0])
        clone = Histogram.from_dict(hist.as_dict())
        assert clone.counts == hist.counts
        assert clone.overflow == hist.overflow

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(edges=(1.0,))
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=(0.0, 1.0), counts=[1, 2, 3])


class TestRngDerivation:
    def test_same_labels_same_stream(self):
        assert derive_rng(1, "a", 2).random() == derive_rng(1, "a", 2).random()

    def test_different_labels_differ(self):
        assert derive_rng(1, "a").random() != derive_rng(1, "b").random()

    def test_fork_is_deterministic(self):
        a = fork_rng(derive_rng(1, "x"), "child")
        b = fork_rng(derive_rng(1, "x"), "child")
        assert a.random() == b.random()


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=0, max_size=200),
)
def test_histogram_mass_conservation_property(values):
    hist = Histogram(edges=(-100.0, 0.0, 100.0))
    hist.extend(values)
    assert hist.total == len(values)
    if values:
        assert sum(hist.fractions()) + (hist.underflow + hist.overflow) / len(
            values
        ) == pytest.approx(1.0)


@given(
    st.integers(min_value=1, max_value=30),
    st.floats(min_value=0.01, max_value=0.99),
)
def test_binomial_mass_property(n, p):
    assert sum(binomial_pmf(k, n, p) for k in range(n + 1)) == pytest.approx(1.0)
