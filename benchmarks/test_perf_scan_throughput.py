"""Scan-engine throughput: sequential vs. sharded worker pool.

The paper's weekly measurement covers >200 M domains; the reproduction's
throughput ceiling therefore *is* the scan engine.  This benchmark
measures domains/sec on a fixed sub-population for the sequential path
and the parallel engine at 1/2/4 workers, asserts that every parallel
configuration merges bit-identically to the sequential dataset, and
writes ``BENCH_scan_throughput.json`` at the repo root so subsequent
PRs can track the perf trajectory (``scripts/bench.sh`` appends each
run to ``BENCH_history.jsonl``).

Speedup expectations are hardware-conditional: the ≥2x-at-4-workers
assertion only applies where 4 cores are actually available — on a
single-core runner the parallel engine cannot beat the GIL-free
sequential path and the numbers are recorded without the assertion.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner

#: Fixed sub-population size; large enough that per-scan setup is noise.
BENCH_DOMAINS = 600

#: Timing-noise slack on the single-worker-overhead bound (the target
#: is <= 10 %; wall-clock jitter on shared runners can exceed that on
#: sub-second runs, so each configuration takes the best of two runs).
OVERHEAD_LIMIT = 0.10

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scan_throughput.json"


def _best_of(runs: int, fn):
    best_elapsed, dataset = None, None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, dataset = elapsed, result
    return dataset, best_elapsed


def test_scan_throughput(population):
    domains = population.domains[:BENCH_DOMAINS]
    config = ScanConfig(qlog_sample_rate=0.05)

    def scan_with(workers: int):
        scanner = Scanner(
            population, config, parallel=ParallelScanConfig(workers=workers)
        )
        return scanner.scan(week_label="cw20-2023", ip_version=4, domains=domains)

    sequential, seq_elapsed = _best_of(2, lambda: scan_with(1))
    results = {"sequential": {"elapsed_s": seq_elapsed}}
    for workers in (1, 2, 4):
        dataset, elapsed = _best_of(2, lambda: scan_with(workers))
        assert dataset == sequential, f"{workers}-worker merge diverged"
        results[f"workers_{workers}"] = {"elapsed_s": elapsed}

    for entry in results.values():
        entry["domains_per_sec"] = round(BENCH_DOMAINS / entry["elapsed_s"], 1)
        entry["elapsed_s"] = round(entry["elapsed_s"], 3)

    cpu_count = os.cpu_count() or 1
    payload = {
        "benchmark": "scan_throughput",
        "bench_domains": BENCH_DOMAINS,
        "cpu_count": cpu_count,
        "results": results,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"scan throughput over {BENCH_DOMAINS} domains ({cpu_count} CPU(s)):")
    for label, entry in results.items():
        print(
            f"  {label:12s} {entry['domains_per_sec']:8.1f} domains/s "
            f"({entry['elapsed_s']:.3f} s)"
        )

    seq_rate = results["sequential"]["domains_per_sec"]
    w1_rate = results["workers_1"]["domains_per_sec"]
    # workers=1 falls back in-process, so the engine adds ~zero cost.
    assert w1_rate >= seq_rate * (1.0 - OVERHEAD_LIMIT), (
        f"single-worker overhead too high: {w1_rate} vs {seq_rate} domains/s"
    )
    # On machines where a pool cannot help (too few cores) the engine
    # now falls back in-process, so workers=2 must never regress below
    # the sequential path; on multi-core machines a real pool runs and
    # the same bound holds because start-up costs are amortized.
    w2_rate = results["workers_2"]["domains_per_sec"]
    assert w2_rate >= seq_rate * (1.0 - OVERHEAD_LIMIT), (
        f"two-worker regression: {w2_rate} vs {seq_rate} domains/s"
    )
    if cpu_count >= 4:
        w4_rate = results["workers_4"]["domains_per_sec"]
        assert w4_rate >= 2.0 * seq_rate, (
            f"expected >=2x speedup at 4 workers on {cpu_count} cores: "
            f"{w4_rate} vs {seq_rate} domains/s"
        )
    else:
        print(f"  ({cpu_count} core(s): 4-worker speedup assertion not applicable)")
