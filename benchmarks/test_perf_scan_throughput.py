"""Scan-engine throughput: sequential vs. the work-stealing pool.

The paper's weekly measurement covers >200 M domains; the reproduction's
throughput ceiling therefore *is* the scan engine.  This benchmark
measures domains/sec on a fixed sub-population for the sequential path
and the parallel engine at 1/2/4 workers, asserts that every parallel
configuration merges bit-identically to the sequential dataset, and
writes ``BENCH_scan_throughput.json`` at the repo root so subsequent
PRs can track the perf trajectory (``scripts/bench.sh`` appends each
run to ``BENCH_history.jsonl``).

Honesty rules: every arm records the host's ``cpu_count``, how many
workers were actually *usable* (``min(workers, cpu_count)``), and its
``speedup_vs_sequential`` ratio; a workers arm that could not get the
cores it asked for is marked ``"constrained": true`` instead of
silently reporting a ~1.0x "speedup" that is really the in-process
fallback.  The ≥2x-at-4-workers assertion only applies where 4 cores
are actually available.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.web.parallel import ParallelScanConfig
from repro.web.scanner import ScanConfig, Scanner

#: Fixed sub-population size; large enough that per-scan setup is noise.
BENCH_DOMAINS = 600

#: Timing-noise slack on the single-worker-overhead bound (the target
#: is <= 10 %; wall-clock jitter on shared runners can exceed that on
#: sub-second runs, so each configuration takes the best of two runs).
OVERHEAD_LIMIT = 0.10

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scan_throughput.json"


def _best_of(runs: int, fn):
    best_elapsed, dataset = None, None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, dataset = elapsed, result
    return dataset, best_elapsed


def test_scan_throughput(population):
    domains = population.domains[:BENCH_DOMAINS]
    config = ScanConfig(qlog_sample_rate=0.05)
    cpu_count = os.cpu_count() or 1

    def scan_with(scanner):
        return scanner.scan(week_label="cw20-2023", ip_version=4, domains=domains)

    sequential_scanner = Scanner(
        population, config, parallel=ParallelScanConfig(workers=1)
    )
    sequential, seq_elapsed = _best_of(2, lambda: scan_with(sequential_scanner))
    results = {"sequential": {"elapsed_s": seq_elapsed, "usable_workers": 1}}
    for workers in (1, 2, 4):
        scanner = Scanner(
            population, config, parallel=ParallelScanConfig(workers=workers)
        )
        try:
            dataset, elapsed = _best_of(2, lambda: scan_with(scanner))
        finally:
            scanner.close()
        assert dataset == sequential, f"{workers}-worker merge diverged"
        usable = min(workers, cpu_count)
        entry = {"elapsed_s": elapsed, "usable_workers": usable}
        if workers > 1 and usable < workers:
            # The host could not grant the cores this arm asked for:
            # the engine fell back in-process and the number measures
            # the fallback, not a pool win.
            entry["constrained"] = True
        results[f"workers_{workers}"] = entry

    for entry in results.values():
        entry["domains_per_sec"] = round(BENCH_DOMAINS / entry["elapsed_s"], 1)
        entry["cpu_count"] = cpu_count
        entry["speedup_vs_sequential"] = round(seq_elapsed / entry["elapsed_s"], 2)
        entry["elapsed_s"] = round(entry["elapsed_s"], 3)

    payload = {
        "benchmark": "scan_throughput",
        "bench_domains": BENCH_DOMAINS,
        "cpu_count": cpu_count,
        "results": results,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"scan throughput over {BENCH_DOMAINS} domains ({cpu_count} CPU(s)):")
    for label, entry in results.items():
        flag = "  [constrained]" if entry.get("constrained") else ""
        print(
            f"  {label:12s} {entry['domains_per_sec']:8.1f} domains/s "
            f"({entry['elapsed_s']:.3f} s, "
            f"{entry['speedup_vs_sequential']:.2f}x){flag}"
        )

    seq_rate = results["sequential"]["domains_per_sec"]
    w1_rate = results["workers_1"]["domains_per_sec"]
    # workers=1 falls back in-process, so the engine adds ~zero cost.
    assert w1_rate >= seq_rate * (1.0 - OVERHEAD_LIMIT), (
        f"single-worker overhead too high: {w1_rate} vs {seq_rate} domains/s"
    )
    # On machines where a pool cannot help (too few cores) the engine
    # falls back in-process, so workers=2 must never regress below the
    # sequential path; on multi-core machines a real pool runs and the
    # same bound holds because start-up costs are amortized.
    w2_rate = results["workers_2"]["domains_per_sec"]
    assert w2_rate >= seq_rate * (1.0 - OVERHEAD_LIMIT), (
        f"two-worker regression: {w2_rate} vs {seq_rate} domains/s"
    )
    if cpu_count >= 4:
        w4 = results["workers_4"]
        assert "constrained" not in w4
        assert w4["speedup_vs_sequential"] >= 2.0, (
            f"expected >=2x speedup at 4 workers on {cpu_count} cores: "
            f"{w4['domains_per_sec']} vs {seq_rate} domains/s"
        )
    else:
        assert results["workers_2"].get("constrained") is True
        assert results["workers_4"].get("constrained") is True
        print(f"  ({cpu_count} core(s): 4-worker speedup assertion not applicable)")
