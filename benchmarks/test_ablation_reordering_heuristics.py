"""Ablation — reordering, RFC 9312 heuristics, and the VEC.

Section 5.2 finds reordering to be nearly irrelevant at the paper's
vantage point but leaves the RFC 9312 filtering heuristics and the
never-standardized Valid Edge Counter untested at scale.  This bench
induces heavy reordering on a dedicated path configuration and measures
how much accuracy each countermeasure restores:

* raw received-order observation (the vulnerable baseline);
* packet-number filter (RFC 9312 / endpoint update rule);
* dynamic hold-time filter (RFC 9312);
* VEC-marked valid edges (De Vaere et al.).
"""

from repro._util.rng import derive_rng, fork_rng
from repro.core.heuristics import DynamicThresholdFilter, PacketNumberFilter
from repro.core.observer import SpinObserver
from repro.core.spin import SpinPolicy
from repro.core.vec import VecObserver
from repro.netsim.delays import UniformDelay
from repro.netsim.path import PathProfile
from repro.quic.connection import ConnectionConfig
from repro.web.http3 import ResponsePlan, run_exchange

RTT_MS = 40.0
CONNECTIONS = 120


def _run_reordered_exchanges():
    """Large static transfers over a path with aggressive reordering."""
    plan = ResponsePlan(
        server_header="LiteSpeed", think_time_ms=20.0, write_sizes=(220_000,)
    )
    profile = PathProfile(
        propagation_delay_ms=RTT_MS / 2,
        jitter=UniformDelay(0.0, 0.5),
        reorder_probability=0.03,
        # Displacements comparable to the RTT cross spin-phase
        # boundaries and fabricate edges (Fig. 1b); smaller ones only
        # swap same-value packets within a flight.
        reorder_extra_delay=UniformDelay(20.0, 60.0),
    )
    config = ConnectionConfig(enable_vec=True)
    results = []
    for seed in range(CONNECTIONS):
        rng = derive_rng(seed, "reorder-ablation")
        result = run_exchange(
            "www.ablation.test",
            plan,
            SpinPolicy.SPIN,
            SpinPolicy.SPIN,
            profile,
            profile,
            fork_rng(rng, "exchange"),
            client_config=config,
            server_config=config,
        )
        if result.success:
            results.append(result)
    return results


def _sample_series(results):
    """Per-variant spin RTT sample pools."""
    raw, pn_filtered, hold_filtered, vec_based = [], [], [], []
    hold = DynamicThresholdFilter(fraction=0.25)
    pn_filter = PacketNumberFilter()
    for result in results:
        packets = [
            (e.time_ms, e.packet_number, bool(e.spin_bit))
            for e in result.recorder.received_short_header_packets()
        ]
        observer = SpinObserver()
        for packet in packets:
            observer.on_packet(*packet)
        observation = observer.observation()
        raw.extend(observation.rtts_received_ms)
        hold_filtered.extend(hold.filter_rtts_from_edges(observation.edges_received))

        filtered_observer = SpinObserver()
        for packet in pn_filter.filter_packets(packets):
            filtered_observer.on_packet(*packet)
        pn_filtered.extend(filtered_observer.observation().rtts_received_ms)

        vec_observer = VecObserver(threshold=3)
        for event in result.recorder.received_short_header_packets():
            vec_observer.on_packet(event.time_ms, event.vec)
        vec_based.extend(vec_observer.rtts_ms())
    return raw, pn_filtered, hold_filtered, vec_based


def _spurious_share(samples):
    """Fraction of samples implausibly below the true path RTT."""
    if not samples:
        return 0.0
    return sum(1 for s in samples if s < RTT_MS * 0.5) / len(samples)


def test_ablation_reordering_heuristics(benchmark):
    results = benchmark.pedantic(_run_reordered_exchanges, rounds=1, iterations=1)
    raw, pn_filtered, hold_filtered, vec_based = _sample_series(results)

    shares = {
        "raw received order": _spurious_share(raw),
        "packet-number filter": _spurious_share(pn_filtered),
        "hold-time filter": _spurious_share(hold_filtered),
        "VEC valid edges": _spurious_share(vec_based),
    }
    print()
    print(f"connections: {len(results)}, raw samples: {len(raw)}")
    for name, share in shares.items():
        print(f"  {name:24s} spurious-sample share {share * 100:6.2f} %")

    # Heavy reordering produces spurious ultra-short cycles in the raw
    # received-order series.
    assert shares["raw received order"] > 0.01

    # Every countermeasure reduces them...
    assert shares["packet-number filter"] <= shares["raw received order"]
    assert shares["hold-time filter"] <= shares["raw received order"]
    assert shares["VEC valid edges"] <= shares["raw received order"]

    # ...and the packet-number filter removes them (it reconstructs the
    # endpoint's own update rule, immune to reordering by design).
    assert shares["packet-number filter"] < 0.005
    # The VEC rejects sender-side non-edges outright.
    assert shares["VEC valid edges"] < shares["raw received order"] * 0.5
