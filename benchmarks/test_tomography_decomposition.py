"""Extension — spin-based RTT decomposition (network tomography).

The paper's discussion cites network tomography (Coates et al. 2002) as
a practical application of spin-bit measurements.  RFC 9312's two-
direction observation splits each spin period at the measurement point:
upstream (observer → server → observer) plus downstream (observer →
client → observer) equals the full period.  This bench verifies the
decomposition law and its sensitivity to the observer's position.
"""

import pytest

from repro._util.rng import derive_rng, fork_rng
from repro.core.spin import EndpointRole, SpinPolicy
from repro.core.tomography import SpinTomographyObserver
from repro.netsim.delays import UniformDelay
from repro.netsim.events import Simulator
from repro.netsim.path import PathProfile, duplex_paths
from repro.quic.connection import ConnectionConfig, QuicEndpoint
from repro.web.http3 import ResponsePlan, _ClientApp, _ServerApp

ONE_WAY_MS = 35.0
CONNECTIONS = 40


def _run_position(position: float, seed: int) -> SpinTomographyObserver:
    simulator = Simulator()
    rng = derive_rng(seed, "tomo-bench", position)
    observer = SpinTomographyObserver(short_dcid_length=8)
    client = QuicEndpoint(
        simulator, EndpointRole.CLIENT, ConnectionConfig(), SpinPolicy.SPIN,
        fork_rng(rng, "c"),
    )
    server = QuicEndpoint(
        simulator, EndpointRole.SERVER, ConnectionConfig(), SpinPolicy.SPIN,
        fork_rng(rng, "s"),
    )
    profile = PathProfile(
        propagation_delay_ms=ONE_WAY_MS, jitter=UniformDelay(0.0, 0.4)
    )
    uplink, downlink = duplex_paths(
        simulator, profile, profile,
        client.receive_datagram, server.receive_datagram, fork_rng(rng, "p"),
    )
    uplink.install_tap(observer.on_client_datagram, position=position)
    downlink.install_tap(observer.on_server_datagram, position=1.0 - position)
    client.attach_transport(uplink.send)
    server.attach_transport(downlink.send)
    plan = ResponsePlan(server_header="x", think_time_ms=20.0, write_sizes=(200_000,))
    _ClientApp(simulator, client, "www.tomo.bench")
    _ServerApp(simulator, server, [plan])
    client.connect()
    simulator.run()
    return observer


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_tomography_decomposition(benchmark):
    def run_all():
        results = {}
        for position in (0.2, 0.5, 0.8):
            samples = []
            for seed in range(CONNECTIONS):
                observer = _run_position(position, seed)
                samples.extend(observer.samples[1:])  # steady state
            results[position] = samples
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for position, samples in results.items():
        up = _median([s.upstream_ms for s in samples])
        down = _median([s.downstream_ms for s in samples])
        print(
            f"  observer at {position:.0%}: upstream {up:6.1f} ms, "
            f"downstream {down:6.1f} ms, period {up + down:6.1f} ms "
            f"({len(samples)} samples)"
        )

    for position, samples in results.items():
        assert len(samples) > 50
        for sample in samples:
            # Conservation law: the components always sum to the period,
            # which is bounded below by the true RTT.
            assert sample.total_ms >= 2 * ONE_WAY_MS - 2.0

        up = _median([s.upstream_ms for s in samples])
        down = _median([s.downstream_ms for s in samples])
        # Geometry: the upstream share tracks the observer's distance
        # to the server (plus the server-side turnaround).
        expected_up = 2 * (1.0 - position) * ONE_WAY_MS
        assert up == pytest.approx(expected_up, abs=8.0)
        expected_down = 2 * position * ONE_WAY_MS
        assert down == pytest.approx(expected_down, abs=12.0)

    # Moving the tap toward the server monotonically shrinks upstream.
    medians = [
        _median([s.upstream_ms for s in results[p]]) for p in (0.2, 0.5, 0.8)
    ]
    assert medians[0] > medians[1] > medians[2]
