"""Section 4.2 (webserver support) — server-header attribution.

Paper reference: "by far the most connections reach LiteSpeed
webservers, making up more than 80 % of all connections ... while
another 7 % are served by imunify360-webshield", concluding that the
overwhelming share of spin-bit support traces back to a single stack.
"""

from repro.analysis.webserver import webserver_shares


def test_webserver_attribution(benchmark, cw20_scan_v4):
    records = cw20_scan_v4.connection_records()
    shares = benchmark.pedantic(
        webserver_shares, args=(records,), kwargs={"spinning_only": True},
        rounds=1, iterations=1,
    )
    print()
    for share in shares[:6]:
        print(
            f"  {share.server_header:30s} {share.connections:6d}"
            f"  {share.share * 100:5.1f} %"
        )

    by_header = {share.server_header: share for share in shares}
    litespeed = by_header.get("LiteSpeed")
    assert litespeed is not None
    assert litespeed.share > 0.75  # paper: >80 %

    imunify = next(
        (share for share in shares if "imunify360" in share.server_header), None
    )
    assert imunify is not None
    assert 0.01 < imunify.share < 0.15  # paper: ~7 %

    # Together the LiteSpeed family carries (almost) all spin support.
    assert litespeed.share + imunify.share > 0.85

    # No hyperscaler header appears among spinning connections.
    assert "cloudflare" not in by_header
    assert "Fastly" not in by_header
