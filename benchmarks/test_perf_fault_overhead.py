"""Resilience-layer overhead: faults disabled must stay near-free.

PR 4 threads the fault-injection and resilience machinery (timeout
budgets, retry loop, failure classification hooks) through the
scanner's per-connection hot path.  The fast path is guarded: with no
fault plan and no resilience config, no impairment is installed, no
timeout bookkeeping runs, and no exchange is classified.  This
benchmark quantifies that guard: scan throughput with a fully populated
``ResilienceConfig`` (but zero faults, so nothing ever retries or
trips) must stay within 5 % of the plain scanner, and the produced
datasets must carry identical measurements.

Writes ``BENCH_fault_overhead.json`` at the repo root;
``scripts/bench.sh`` appends each run to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.faults import BreakerPolicy, ResilienceConfig, RetryPolicy
from repro.web.scanner import ScanConfig, Scanner

#: Fixed workload size; big enough that per-run setup is noise.
BENCH_DOMAINS = 400

#: Maximum tolerated slowdown of the resilience layer at rest
#: (issue acceptance: <5 %).  Measured as the *median* of per-round
#: guarded/plain ratios over alternating rounds: each round's two runs
#: share whatever machine-level drift is active, so their ratio is far
#: steadier than any absolute timing on a noisy box.
OVERHEAD_LIMIT = 0.05
ROUNDS = 9

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fault_overhead.json"

#: Generous budgets: nothing in the benchmark workload ever hits them,
#: so the run measures pure bookkeeping cost, not behaviour changes.
_RESILIENCE = ResilienceConfig(
    connect_timeout_ms=120_000.0,
    domain_budget_ms=600_000.0,
    retry=RetryPolicy(max_attempts=3),
    breaker=BreakerPolicy(failure_threshold=50, cooldown_attempts=10),
)


def _paired_rounds(rounds: int, fn_a, fn_b) -> tuple[list[float], float, float]:
    """Time ``rounds`` alternating (a, b) pairs.

    Returns the per-round ``b/a`` ratios plus the best absolute time of
    each configuration.  The two runs of one round share whatever
    machine-level drift is active (thermal, cache, scheduler), so the
    per-round ratio — and especially its median — is far steadier than
    any absolute timing.
    """
    ratios: list[float] = []
    best_a = best_b = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        elapsed_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        elapsed_b = time.perf_counter() - start
        ratios.append(elapsed_b / elapsed_a)
        if best_a is None or elapsed_a < best_a:
            best_a = elapsed_a
        if best_b is None or elapsed_b < best_b:
            best_b = elapsed_b
    return ratios, best_a, best_b


def _scan_runner(population, config: ScanConfig):
    domains = population.domains[:BENCH_DOMAINS]

    def run():
        Scanner(population, config).scan(
            week_label="cw20-2023", ip_version=4, domains=domains
        )

    return run


def test_fault_overhead(population):
    domains = population.domains[:BENCH_DOMAINS]

    # The resilience layer at rest must not change a single
    # measurement: success flags, observations, and RTT series are
    # identical; only the (now classified) failure annotations differ.
    plain = Scanner(population, ScanConfig()).scan(domains=domains)
    guarded = Scanner(
        population, ScanConfig(resilience=_RESILIENCE)
    ).scan(domains=domains)
    for a, b in zip(plain.connection_records(), guarded.connection_records()):
        assert a.domain == b.domain
        assert a.success == b.success
        assert a.status == b.status
        assert a.behaviour == b.behaviour
        assert a.observation == b.observation
        assert a.stack_rtts_ms == b.stack_rtts_ms

    # Warm-up pass so the first measured round doesn't absorb one-time
    # import/cache costs (the identity scans above already did most of
    # this, but keep the measurement self-contained).
    run_plain = _scan_runner(population, ScanConfig())
    run_guarded = _scan_runner(population, ScanConfig(resilience=_RESILIENCE))
    run_guarded()
    run_plain()

    ratios, plain_s, guarded_s = _paired_rounds(ROUNDS, run_plain, run_guarded)
    overhead = statistics.median(ratios) - 1.0

    payload = {
        "benchmark": "fault_overhead",
        "bench_domains": BENCH_DOMAINS,
        "rounds": ROUNDS,
        "results": {
            "best_plain_s": round(plain_s, 3),
            "best_resilience_s": round(guarded_s, 3),
            "domains_per_sec_plain": round(BENCH_DOMAINS / plain_s, 1),
            "domains_per_sec_resilience": round(BENCH_DOMAINS / guarded_s, 1),
            "round_ratios": [round(r, 4) for r in ratios],
            "overhead_median": round(overhead, 4),
        },
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"fault/resilience overhead ({BENCH_DOMAINS} domains, {ROUNDS} rounds):")
    print(
        f"  plain best {plain_s:.3f} s  with resilience best {guarded_s:.3f} s  "
        f"median overhead {overhead * 100:+.1f} %"
    )

    assert overhead < OVERHEAD_LIMIT, (
        f"resilience-at-rest overhead {overhead * 100:.1f} % (median of "
        f"{ROUNDS} paired rounds) exceeds {OVERHEAD_LIMIT * 100:.0f} %"
    )
