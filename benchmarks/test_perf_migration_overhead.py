"""Flow-table throughput under migration churn: the resolver's price.

PR 9 puts a :class:`~repro.core.flow_resolver.FlowKeyResolver` in front
of the flow table's keying decision.  Every datagram now passes through
``resolve()`` (two dict probes plus tuple bookkeeping) instead of one
``destination_cid.hex`` lookup, so the on-path monitor pays the cost on
*every* packet even though migrations are rare.  This benchmark feeds
the identical pre-encoded mixed workload — stable flows, NAT rebinds,
CID rotations, and interleaved TCP segments — through a plain table and
a resolver-equipped table, and gates the resolver's ingestion overhead
at <10 % (median of paired-round ratios, same machine-drift-cancelling
scheme as the other overhead benchmarks).

Writes ``BENCH_migration_overhead.json`` at the repo root;
``scripts/bench.sh`` appends each run to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import json
import random
import statistics
import time
from pathlib import Path

from repro.core.flow_resolver import FlowKeyResolver
from repro.core.flow_table import SpinFlowTable
from repro.netsim.tcp import TcpSegment, encode_tcp_segment
from repro.quic.connection_id import ConnectionId
from repro.quic.datagram import QuicPacket, encode_datagram
from repro.quic.frames import PingFrame
from repro.quic.packet import ShortHeader

#: Workload shape: enough flows/packets that per-run setup is noise.
FLOWS = 400
PACKETS_PER_FLOW = 60
#: Fractions of flows that experience churn mid-stream.
REBIND_FRACTION = 0.2
ROTATION_FRACTION = 0.2
TCP_EVERY = 23  # one TCP segment interleaved every N QUIC datagrams

OVERHEAD_LIMIT = 0.10
ROUNDS = 9

_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_migration_overhead.json"
)


def _build_workload() -> list[tuple[float, bytes, tuple]]:
    """Pre-encode the tap stream once; timing measures ingestion only."""
    rng = random.Random(20230520)
    server = ("198.18.0.1", 443)
    taps: list[tuple[float, bytes, tuple]] = []
    for flow in range(FLOWS):
        cid = flow.to_bytes(8, "big")
        rotated_cid = (flow | 1 << 32).to_bytes(8, "big")
        tuple4 = (f"10.0.{flow >> 8}.{flow & 0xFF}", 40_000 + flow, *server)
        rebound = (f"10.9.{flow >> 8}.{flow & 0xFF}", 50_000 + flow, *server)
        # Mutually exclusive: a flow changing tuple AND CID at once is
        # a path migration — unlinkable by design, which would (corr-
        # ectly) open extra flows and muddy the flow-count assertions.
        churn = rng.random()
        does_rebind = churn < REBIND_FRACTION
        does_rotate = REBIND_FRACTION <= churn < REBIND_FRACTION + ROTATION_FRACTION
        for pn in range(PACKETS_PER_FLOW):
            midpoint = pn >= PACKETS_PER_FLOW // 2
            wire_cid = rotated_cid if does_rotate and midpoint else cid
            wire_tuple = rebound if does_rebind and midpoint else tuple4
            packet = QuicPacket(
                header=ShortHeader(
                    destination_cid=ConnectionId(wire_cid),
                    packet_number=pn,
                    spin_bit=bool(pn // 4 % 2),
                ),
                frames=(PingFrame(),),
            )
            time_ms = flow * 0.01 + pn * 12.0
            taps.append((time_ms, encode_datagram([packet]), wire_tuple))
            if len(taps) % TCP_EVERY == 0:
                segment = encode_tcp_segment(
                    TcpSegment(443, 30_000 + flow, pn + 1, pn, bool(pn % 2), 0x10, 64)
                )
                taps.append((time_ms, segment, wire_tuple))
    taps.sort(key=lambda tap: tap[0])
    return taps


def _ingest(taps, with_resolver: bool) -> SpinFlowTable:
    table = SpinFlowTable(
        short_dcid_length=8,
        max_flows=2 * FLOWS,
        idle_timeout_ms=3_600_000.0,
        retain_retired=False,
        resolver=FlowKeyResolver() if with_resolver else None,
    )
    on_datagram = table.on_server_datagram
    for time_ms, data, tuple4 in taps:
        on_datagram(time_ms, data, tuple4)
    return table


def _paired_rounds(rounds: int, fn_a, fn_b) -> tuple[list[float], float, float]:
    """Per-round ``b/a`` ratios plus each configuration's best time."""
    ratios: list[float] = []
    best_a = best_b = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        elapsed_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        elapsed_b = time.perf_counter() - start
        ratios.append(elapsed_b / elapsed_a)
        if best_a is None or elapsed_a < best_a:
            best_a = elapsed_a
        if best_b is None or elapsed_b < best_b:
            best_b = elapsed_b
    return ratios, best_a, best_b


def test_migration_overhead():
    taps = _build_workload()

    # Correctness first: the resolver-equipped table must actually be
    # doing the extra work the benchmark claims to price — linking
    # migrations and classifying the interleaved TCP segments.
    table = _ingest(taps, with_resolver=True)
    resolver = table.resolver
    assert resolver.flows_migrated > 0
    assert resolver.rebinds_seen > 0
    assert resolver.tcp_datagrams > 0
    assert resolver.flows_split == 0
    assert table.stats.flows_created == FLOWS
    plain = _ingest(taps, with_resolver=False)
    # Without the resolver every rotated CID opens a phantom flow and
    # TCP segments land in parse_errors — the behaviour being bought.
    assert plain.stats.flows_created > FLOWS
    assert plain.parse_errors > 0

    run_plain = lambda: _ingest(taps, with_resolver=False)
    run_resolver = lambda: _ingest(taps, with_resolver=True)
    ratios, plain_s, resolver_s = _paired_rounds(ROUNDS, run_plain, run_resolver)
    overhead = statistics.median(ratios) - 1.0

    payload = {
        "benchmark": "migration_overhead",
        "flows": FLOWS,
        "datagrams": len(taps),
        "rounds": ROUNDS,
        "results": {
            "best_plain_s": round(plain_s, 3),
            "best_resolver_s": round(resolver_s, 3),
            "datagrams_per_sec_plain": round(len(taps) / plain_s, 1),
            "datagrams_per_sec_resolver": round(len(taps) / resolver_s, 1),
            "round_ratios": [round(r, 4) for r in ratios],
            "overhead_median": round(overhead, 4),
        },
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(
        f"migration-churn flow-table ingestion ({len(taps)} datagrams, "
        f"{FLOWS} flows, {ROUNDS} rounds):"
    )
    print(
        f"  plain best {plain_s:.3f} s  with resolver best {resolver_s:.3f} s  "
        f"median overhead {overhead * 100:+.1f} %"
    )

    assert overhead < OVERHEAD_LIMIT, (
        f"flow-key resolver overhead {overhead * 100:.1f} % (median of "
        f"{ROUNDS} paired rounds) exceeds {OVERHEAD_LIMIT * 100:.0f} %"
    )
