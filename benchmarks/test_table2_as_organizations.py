"""Table 2 — AS-organization attribution (com/net/org, IPv4).

Paper reference: Cloudflare and Google dominate connection volume with
no (0 %) or negligible (0.11 %) spin support; Hostinger leads absolute
spin support with ~52 % of its connections spinning; OVH / A2 Hosting /
SingleHop / Server Central each spin on >50 % of theirs; the aggregated
remainder still spins on 53.3 % of connections.
"""

import pytest

from repro.analysis.asorg import organization_table
from repro.analysis.report import render_org_table
from repro.internet.population import ListGroup


def test_table2_as_organizations(benchmark, cw20_scan_v4, population, asdb):
    cno_names = {d.name for d in population.group_members(ListGroup.COM_NET_ORG)}
    connections = [
        record
        for result in cw20_scan_v4.results
        if result.domain.name in cno_names
        for record in result.connections
    ]

    table = benchmark.pedantic(
        organization_table, args=(connections, asdb), rounds=1, iterations=1
    )
    print()
    print(render_org_table(table))

    # Volume ranking: the hyperscalers lead.
    assert table.top_rows[0].org_name == "Cloudflare"
    assert table.top_rows[1].org_name == "Google"

    cloudflare = table.row("Cloudflare")
    assert cloudflare.spin_connections == 0

    google = table.row("Google")
    assert google.spin_share < 0.02  # paper: 0.11 %

    fastly = table.row("Fastly")
    assert fastly.spin_connections == 0

    hostinger = table.row("Hostinger")
    assert hostinger.total_connections > 50
    assert 0.35 < hostinger.spin_share < 0.68  # paper: 51.9 %
    assert hostinger.spin_rank is not None and hostinger.spin_rank <= 3

    # Mid-size hosters: >50 % spin share where sample size permits.
    for org in ("OVH SAS", "A2 Hosting", "SingleHop", "Server Central"):
        try:
            row = table.row(org)
        except KeyError:
            continue
        if row.total_connections >= 12:
            assert 0.30 < row.spin_share < 0.90, org

    # Broad long-tail support (paper: 53.3 % of <other> connections).
    other = table.other
    assert other.total_connections > 100
    assert 0.20 < other.spin_connections / other.total_connections < 0.70
