"""Ablation — grease-filter design choices (DESIGN.md Section 5).

The paper's filter flags a connection as greasing when any spin RTT
sample undercuts the minimum stack RTT, and Section 5.2 suspects it of
false positives.  This ablation quantifies how the flagged population
moves under alternative baselines, slack, and vote requirements.
"""

from repro.core.grease_filter import GreaseFilterVariant


def _flag_counts(records, variants):
    counts = {name: 0 for name in variants}
    candidates = 0
    for record in records:
        observation = record.observation
        if not observation.spins:
            continue
        spin = observation.rtts_received_ms
        stack = record.stack_rtts_ms
        if not spin or not stack:
            continue
        candidates += 1
        for name, variant in variants.items():
            if variant.is_greasing(spin, stack):
                counts[name] += 1
    return candidates, counts


def test_ablation_grease_filter(benchmark, accuracy_records):
    variants = {
        "paper (min, slack 1.0)": GreaseFilterVariant(),
        "lenient (min, slack 0.9)": GreaseFilterVariant(slack=0.9),
        "strict (min, slack 1.1)": GreaseFilterVariant(slack=1.1),
        "mean baseline": GreaseFilterVariant(baseline="mean"),
        "p10 baseline": GreaseFilterVariant(baseline="quantile", baseline_quantile=10.0),
        "two votes": GreaseFilterVariant(min_votes=2),
    }
    candidates, counts = benchmark.pedantic(
        _flag_counts, args=(accuracy_records, variants), rounds=1, iterations=1
    )
    print()
    print(f"spin-activity candidates with samples: {candidates}")
    for name, count in counts.items():
        print(f"  {name:28s} flags {count:5d} ({count / candidates * 100:.2f} %)")

    paper = counts["paper (min, slack 1.0)"]
    # Monotonicity of the slack parameter.
    assert counts["lenient (min, slack 0.9)"] <= paper
    assert counts["strict (min, slack 1.1)"] >= paper
    # Requiring two undercutting samples only removes flags.
    assert counts["two votes"] <= paper
    # The mean baseline is at least as aggressive as the min baseline.
    assert counts["mean baseline"] >= paper
    # The paper's filter stays rare on this vantage point (paper:
    # 0.024 % of CZDS QUIC domains; here measured per connection).
    assert paper / candidates < 0.05
