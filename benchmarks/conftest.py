"""Shared fixtures for the benchmark harness.

The harness regenerates every table and figure of the paper at a
calibrated, scaled-down population (ratios preserved; see DESIGN.md).
The expensive artifacts — the population and the weekly scans — are
built once per session and shared; each benchmark times its own
regeneration step and prints the paper-style rows.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.schedule import DEFAULT_CAMPAIGN
from repro.internet.asdb import build_default_asdb
from repro.internet.population import PopulationConfig, build_population
from repro.web.scanner import ScanConfig, Scanner

#: The benchmark scale: 1/6400 of the paper's CZDS population and
#: ~1/100 of its toplists, with all rates preserved.
BENCH_CONFIG = PopulationConfig(
    toplist_domains=4_000,
    czds_domains=34_000,
    seed=20230520,
)

#: Number of weeks of the Figure 2 longitudinal study.
COMPLIANCE_WEEKS = 12


@pytest.fixture(scope="session")
def population():
    return build_population(BENCH_CONFIG)


@pytest.fixture(scope="session")
def scanner(population):
    return Scanner(population, ScanConfig())


@pytest.fixture(scope="session")
def cw20_scan_v4(scanner):
    """The paper's reference measurement: CW 20, 2023 over IPv4."""
    return scanner.scan(week_label="cw20-2023", ip_version=4)


@pytest.fixture(scope="session")
def cw20_scan_v6(scanner):
    """The CW 20, 2023 IPv6 measurement (Table 4)."""
    return scanner.scan(week_label="cw20-2023", ip_version=6)


@pytest.fixture(scope="session")
def asdb():
    return build_default_asdb()


@pytest.fixture(scope="session")
def accuracy_records(scanner, cw20_scan_v4):
    """Spin-active connections pooled over several campaign weeks.

    The paper's Section 5 uses all IPv4 connections with spin activity
    across the entire campaign (~86 M); we pool the CW 20 scan with two
    additional weekly scans of the domains that showed activity, which
    multiplies the sample without rescanning the full population.
    """
    spin_domains = [
        result.domain
        for result in cw20_scan_v4.results
        if result.shows_spin_activity
    ]
    records = list(cw20_scan_v4.connection_records())
    for label in ("cw18-2023", "cw19-2023"):
        extra = scanner.scan(week_label=label, ip_version=4, domains=spin_domains)
        records.extend(extra.connection_records())
    return records


@pytest.fixture(scope="session")
def longitudinal_12w(population):
    """Twelve spread weeks over a population slice (Figure 2).

    Weekly full-population scans would dominate the harness runtime, so
    the longitudinal study samples a deterministic slice of QUIC-enabled
    domains; the selection criterion (spun at least once, connected in
    every week) is applied afterwards, exactly as in the paper.
    """
    runner = CampaignRunner(population, DEFAULT_CAMPAIGN)
    quic_domains = [d for d in population.domains if d.quic_enabled]
    subset = quic_domains[:1_500]
    return runner.run_longitudinal(COMPLIANCE_WEEKS, domains=subset)
