"""Profiler overhead: a profiled scan must stay close to telemetry-only.

PR 8 threads the charge-driven sampling profiler (:mod:`repro.obs.profile`)
through the scanner's per-domain and per-connection hot paths, guarded —
like every other instrument — by ``is None`` checks and, when on, doing
only dict accumulation per phase.  This benchmark quantifies the cost
of turning the profiler on *on top of* an already-instrumented scan
(the realistic ``repro profile`` configuration): the paired-round
median slowdown must stay under 10 %.

Writes ``BENCH_profile_overhead.json`` at the repo root;
``scripts/bench.sh`` appends each run to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.obs import PhaseProfiler
from repro.telemetry import Telemetry
from repro.web.scanner import ScanConfig, Scanner

#: Fixed workload size; big enough that per-run setup is noise.
BENCH_DOMAINS = 400

#: Maximum tolerated profiler-on slowdown (issue acceptance: <10 %),
#: as the median of per-round on/off ratios (see the fault-overhead
#: benchmark for why ratios beat absolute best-of-N times).
OVERHEAD_LIMIT = 0.10
ROUNDS = 9

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profile_overhead.json"


def _scan_runner(population, profiled: bool):
    domains = population.domains[:BENCH_DOMAINS]

    def run():
        telemetry = Telemetry()
        if profiled:
            telemetry.profiler = PhaseProfiler()
        Scanner(population, ScanConfig(), telemetry=telemetry).scan(
            week_label="cw20-2023", ip_version=4, domains=domains
        )

    return run


def test_profile_overhead(population):
    run_plain = _scan_runner(population, profiled=False)
    run_profiled = _scan_runner(population, profiled=True)

    # Warm-up pass so the first measured round doesn't absorb one-time
    # import/cache costs.
    run_profiled()
    run_plain()

    ratios: list[float] = []
    best_plain = best_profiled = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_plain()
        elapsed_plain = time.perf_counter() - start
        start = time.perf_counter()
        run_profiled()
        elapsed_profiled = time.perf_counter() - start
        ratios.append(elapsed_profiled / elapsed_plain)
        if best_plain is None or elapsed_plain < best_plain:
            best_plain = elapsed_plain
        if best_profiled is None or elapsed_profiled < best_profiled:
            best_profiled = elapsed_profiled

    overhead = statistics.median(ratios) - 1.0

    payload = {
        "benchmark": "profile_overhead",
        "bench_domains": BENCH_DOMAINS,
        "rounds": ROUNDS,
        "results": {
            "best_telemetry_s": round(best_plain, 3),
            "best_profiled_s": round(best_profiled, 3),
            "domains_per_sec_telemetry": round(BENCH_DOMAINS / best_plain, 1),
            "domains_per_sec_profiled": round(BENCH_DOMAINS / best_profiled, 1),
            "round_ratios": [round(r, 4) for r in ratios],
            "overhead_median": round(overhead, 4),
        },
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"profiler overhead ({BENCH_DOMAINS} domains, {ROUNDS} rounds):")
    print(
        f"  telemetry-only best {best_plain:.3f} s  profiled best "
        f"{best_profiled:.3f} s  median overhead {overhead * 100:+.1f} %"
    )

    assert overhead < OVERHEAD_LIMIT, (
        f"profiler overhead {overhead * 100:.1f} % (median of {ROUNDS} "
        f"paired rounds) exceeds {OVERHEAD_LIMIT * 100:.0f} %"
    )
