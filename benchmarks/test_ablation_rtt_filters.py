"""Ablation — RFC 9312 filtering on the measured scan data.

The paper's conclusion: spin-bit estimates "can benefit from further
research, e.g., studying the usefulness of filtering techniques
described in RFC 9312".  This bench runs that study on the campaign's
own spin-active connections (not a synthetic stress test): the static
floor and hold-time heuristics must not distort clean measurements, and
any ultra-short reordering artifacts they remove shrink the
underestimation share.
"""

from repro.analysis.filter_study import run_filter_study


def test_ablation_rtt_filters(benchmark, accuracy_records):
    study = benchmark.pedantic(
        run_filter_study, args=(accuracy_records,), rounds=1, iterations=1
    )
    print()
    for outcome in study.outcomes():
        print(
            f"  {outcome.label:22s} n={outcome.connections:5d}"
            f"  within25%={outcome.within_25pct_share * 100:5.1f} %"
            f"  underest={outcome.underestimate_share * 100:5.2f} %"
            f"  median|abs|={outcome.median_abs_ms:7.1f} ms"
            f"  lost={outcome.connections_lost}"
        )

    raw = study.raw
    assert raw.connections > 400

    # Filtering never invents connections, and loses almost none at
    # this vantage point (reordering is rare, Section 5.2).
    for outcome in (study.static, study.hold_time, study.combined):
        assert outcome.connections + outcome.connections_lost == raw.connections
        assert outcome.connections_lost < raw.connections * 0.02

    # The filters do not distort the overall accuracy picture ...
    for outcome in (study.static, study.hold_time, study.combined):
        assert abs(outcome.within_25pct_share - raw.within_25pct_share) < 0.05

    # ... and they can only reduce the underestimation share (the
    # static floor drops implausibly short samples and nothing else;
    # the hold-time merge may shift means slightly either way).
    assert study.static.underestimate_share <= raw.underestimate_share + 1e-9
    assert study.combined.underestimate_share <= raw.underestimate_share + 0.01
