"""Table 3 — how QUIC domains set the spin bit (CW 20, 2023, IPv4).

Paper reference: ~92.8 % of toplist / ~89.4 % of CZDS QUIC domains send
all-zero; all-one is rare (0.16 / 0.28 %); the grease filter removes a
tiny fraction (0.01 / 0.024 %); the Spin column equals Table 1's.
"""

from repro.analysis.config import configuration_table
from repro.analysis.report import render_configuration_table
from repro.analysis.support import support_overview
from repro.internet.population import ListGroup


def test_table3_spin_configuration(benchmark, cw20_scan_v4, population):
    table = benchmark.pedantic(
        configuration_table, args=(cw20_scan_v4, population), rounds=1, iterations=1
    )
    print()
    print(render_configuration_table(table))

    czds = table.row(ListGroup.CZDS)
    toplists = table.row(ListGroup.TOPLISTS)

    # Zeroing dominates among non-participants.
    assert czds.all_zero_share > 0.82
    assert toplists.all_zero_share > 0.85
    # All-one deployments are rare but present in the zone view.
    assert czds.all_one_share < 0.02
    # The grease filter removes only a small number of candidates.
    assert czds.grease_share < 0.02
    assert toplists.grease_share < 0.02
    # All-zero is by far the most common disabling strategy.
    assert czds.all_zero > 50 * max(czds.all_one, 1)

    # Consistency with Table 1: the Spin columns are the same metric.
    overview = support_overview(cw20_scan_v4, population)
    assert czds.spin == overview.row(ListGroup.CZDS).domains_spin
    assert toplists.spin == overview.row(ListGroup.TOPLISTS).domains_spin
