"""Figure 4 — relative accuracy: histogram of the mapped ratio of means.

Paper reference (Spin (R) series): 30.5 % of spinning connections are
within 25 % of the stack RTT; 36.0 % are within a factor of two; 51.7 %
overestimate by more than a factor of three — the distribution is
polarized between an accurate core and a heavily inflated tail.
"""

from repro.analysis.accuracy import accuracy_study
from repro.analysis.report import render_histogram


def test_fig4_relative_accuracy(benchmark, accuracy_records):
    study = benchmark.pedantic(
        accuracy_study, args=(accuracy_records,), rounds=1, iterations=1
    )
    series = study.spin_received
    print()
    print("mapped ratio histogram, Spin (R):")
    print(render_histogram(series.ratio_histogram))
    print(
        f"within 25 %: {series.within_25pct_share * 100:.1f} %   "
        f"within 2x: {series.within_factor2_share * 100:.1f} %   "
        f"over 3x: {series.over_factor3_share * 100:.1f} %"
    )

    assert series.connections > 400

    # The accurate core (paper: 30.5 % within 25 %).
    assert 0.20 < series.within_25pct_share < 0.45

    # Within a factor of two adds only a little (paper: 36.0 %): the
    # distribution is polarized.
    assert series.within_factor2_share >= series.within_25pct_share
    assert series.within_factor2_share - series.within_25pct_share < 0.20

    # The inflated tail (paper: 51.7 % beyond 3x).
    assert 0.35 < series.over_factor3_share < 0.70

    # Grease (filtered) connections are few compared to Spin ones.
    assert study.grease_received.connections < series.connections * 0.10
