"""Service query latency: millisecond answers from the week index.

The point of the service plane is that asking "what was adoption in
week X?" costs milliseconds, not a re-analysis of the archive.  This
benchmark spools a ≥100k-record multi-week synthetic corpus, folds it
through the incremental indexer once, then hammers the summary
endpoints of a live HTTP server and measures per-request latency.

Hard gates:

* **p50 < 10 ms** over the summary endpoints (adoption, compliance,
  analyze, weeks, healthz) against the indexed 100k-record corpus;
* **zero cbr chunk decodes** on the query hot path — the telemetry
  registry's ``query.chunks_total`` counter (which every chunk-decoding
  query path emits into) must stay absent/zero after the request storm.

Writes ``BENCH_service_query.json`` at the repo root
(``scripts/bench.sh`` appends each run to ``BENCH_history.jsonl``).
"""

from __future__ import annotations

import json
import random
import statistics
import threading
import time
import urllib.request
from pathlib import Path

from repro.artifacts.cbr import write_records_cbr
from repro.core.classify import SpinBehaviour
from repro.core.observer import SpinEdge, SpinObservation
from repro.internet.asdb import IpAddr
from repro.service import ServiceState, SpoolStore, WeekIndexer, build_server
from repro.telemetry import Telemetry
from repro.web.scanner import ConnectionRecord

#: ≥100k records across 26 measurement weeks, spooled as one artifact
#: per quarter of the campaign (multi-artifact folding, like the daemon).
BENCH_WEEKS = 26
RECORDS_PER_WEEK = 4_000
ARTIFACTS = 4

#: Hard gates (ISSUE acceptance criteria).
MAX_P50_MS = 10.0
REQUESTS = 400

_PROVIDERS = ("cloudflare", "google", "fastly", "hostinger", "other-hosting")
_BEHAVIOURS = (
    SpinBehaviour.SPIN,
    SpinBehaviour.SPIN,
    SpinBehaviour.ALL_ZERO,
    SpinBehaviour.ALL_ONE,
    SpinBehaviour.GREASE,
)

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service_query.json"


def _build_records() -> list[ConnectionRecord]:
    rng = random.Random(20230520)
    records = []
    index = 0
    for week_offset in range(BENCH_WEEKS):
        week = f"cw{10 + week_offset}-2023"
        for _ in range(RECORDS_PER_WEEK):
            behaviour = _BEHAVIOURS[index % len(_BEHAVIOURS)]
            spinning = behaviour is SpinBehaviour.SPIN
            edge_times = [
                1_000.0 * week_offset + 30.0 * j
                for j in range(rng.randrange(2, 6) if spinning else 0)
            ]
            edges = [
                SpinEdge(time_ms=t, packet_number=j * 3 + 1, new_value=bool(j % 2))
                for j, t in enumerate(edge_times)
            ]
            rtts = [30.0 for _ in edges[1:]]
            observation = SpinObservation(
                packets_seen=max(4, len(edges) * 4),
                values_seen={False, True} if spinning else {False},
                edges_received=edges,
                edges_sorted=list(edges),
                rtts_received_ms=rtts,
                rtts_sorted_ms=list(rtts),
            )
            records.append(
                ConnectionRecord(
                    domain=f"dom{index:07d}.example",
                    host=f"www.dom{index:07d}.example",
                    ip=IpAddr(value=0x0A000001 + index, version=4),
                    ip_version=4,
                    provider_name=_PROVIDERS[index % len(_PROVIDERS)],
                    server_header="LiteSpeed",
                    status=200,
                    success=True,
                    behaviour=behaviour,
                    observation=observation,
                    stack_rtts_ms=list(rtts),
                    negotiated_version=1,
                    week=week,
                )
            )
            index += 1
    return records


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url) as response:
        assert response.status == 200
        return response.read()


def test_service_query_latency(tmp_path):
    records = _build_records()
    n = len(records)
    assert n >= 100_000

    # -- spool + fold (the daemon's write path, timed for the record) --
    spool = SpoolStore(tmp_path / "spool")
    indexer = WeekIndexer(tmp_path / "index")
    per_artifact = n // ARTIFACTS
    for start in range(0, n, per_artifact):
        path = tmp_path / f"slice-{start}.cbr"
        with open(path, "wb") as stream:
            write_records_cbr(records[start:start + per_artifact], stream)
        spool.submit_file(path)
    fold_start = time.perf_counter()
    folded = indexer.fold_pending(spool)
    fold_elapsed = time.perf_counter() - fold_start
    assert len(folded) == ARTIFACTS
    assert len(indexer.weeks()) == BENCH_WEEKS

    # -- live server over the index -----------------------------------
    telemetry = Telemetry()
    state = ServiceState(spool, indexer, telemetry=telemetry)
    server = build_server(state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        port = server.server_address[1]
        base = f"http://127.0.0.1:{port}"
        weeks = indexer.weeks()
        endpoints = [
            f"{base}/v1/adoption?week={weeks[0]}",
            f"{base}/v1/adoption",
            f"{base}/v1/compliance?week={weeks[-1]}",
            f"{base}/v1/analyze?week={weeks[1]}&section=versions",
            f"{base}/v1/analyze",
            f"{base}/v1/weeks",
            f"{base}/v1/healthz",
        ]
        for url in endpoints:  # warm-up: parse summaries, render text
            _get(url)

        merged = json.loads(_get(f"{base}/v1/adoption"))
        assert merged["connections_total"] == n

        latencies_ms = []
        for i in range(REQUESTS):
            url = endpoints[i % len(endpoints)]
            start = time.perf_counter()
            _get(url)
            latencies_ms.append((time.perf_counter() - start) * 1_000.0)
    finally:
        server.shutdown()
        server.server_close()

    latencies_ms.sort()
    quantiles = statistics.quantiles(latencies_ms, n=100)
    p50, p99 = quantiles[49], quantiles[98]
    counters = telemetry.registry.snapshot()["counters"]
    chunks_decoded = counters.get("query.chunks_total", 0)

    payload = {
        "benchmark": "service_query",
        "records": n,
        "weeks": BENCH_WEEKS,
        "artifacts": ARTIFACTS,
        "fold_elapsed_s": round(fold_elapsed, 3),
        "requests": REQUESTS,
        "latency_ms": {
            "p50": round(p50, 3),
            "p99": round(p99, 3),
            "max": round(latencies_ms[-1], 3),
        },
        "query.chunks_total": chunks_decoded,
        "requests_served": counters.get("service.requests_total", 0),
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"service query over {n} indexed records ({BENCH_WEEKS} weeks):")
    print(f"  fold (once)   {fold_elapsed:7.3f} s")
    print(f"  p50           {p50:7.3f} ms")
    print(f"  p99           {p99:7.3f} ms")
    print(f"  chunk decodes {chunks_decoded:7d}")

    assert p50 < MAX_P50_MS, (
        f"summary-endpoint p50 {p50:.3f} ms exceeds the {MAX_P50_MS:.0f} ms gate"
    )
    assert chunks_decoded == 0, (
        f"query hot path decoded {chunks_decoded} cbr chunks; must be zero"
    )
