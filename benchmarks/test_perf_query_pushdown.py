"""Predicate-pushdown query latency: zone-pruned vs. full-decode analyze.

The zone maps in the cbr footer exist so an interactive question ("what
failed in week X?", "show me this domain") stops paying for the whole
archive.  This benchmark builds a ≥100k-record multi-week synthetic
artifact, then measures three paths over the identical file:

* the unfiltered single-pass analyze (decodes every chunk — baseline);
* a selective ``--where week == ...`` analyze through the planner;
* the ``repro query domain`` point lookup through the domain index.

Hard gates: both pushdown paths must inflate **< 5 % of chunks** and run
**≥ 10x faster** than the unfiltered baseline while producing results
identical to brute-force filtering.  Writes
``BENCH_query_pushdown.json`` at the repo root (``scripts/bench.sh``
appends each run to ``BENCH_history.jsonl``).
"""

from __future__ import annotations

import gc
import io
import json
import random
import time
from pathlib import Path

from repro.analysis import AnalysisEngine, build_record_folds
from repro.analysis.query import Eq, QueryStats, filter_batch
from repro.artifacts import open_query_source, open_record_batches
from repro.artifacts.cbr import write_records_cbr
from repro.core.classify import SpinBehaviour
from repro.core.observer import SpinEdge, SpinObservation
from repro.internet.asdb import IpAddr
from repro.web.scanner import ConnectionRecord

#: ≥100k records: 26 measurement weeks, written week-sorted (the shard
#: merge order), so week envelopes are tight per chunk.
BENCH_WEEKS = 26
RECORDS_PER_WEEK = 4_000
CHUNK_RECORDS = 256

#: Hard gates from the design target (DESIGN.md Sec. 10).
MAX_CHUNK_FRACTION = 0.05
MIN_SPEEDUP = 10.0

_PROVIDERS = ("cloudflare", "google", "fastly", "hostinger", "other-hosting")

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_query_pushdown.json"


def _build_records() -> list[ConnectionRecord]:
    rng = random.Random(20230520)
    records = []
    index = 0
    for week_offset in range(BENCH_WEEKS):
        week = f"cw{10 + week_offset}-2023"
        for _ in range(RECORDS_PER_WEEK):
            edge_times = [
                1_000.0 * week_offset + 30.0 * j
                for j in range(rng.randrange(2, 6))
            ]
            edges = [
                SpinEdge(time_ms=t, packet_number=j * 3 + 1, new_value=bool(j % 2))
                for j, t in enumerate(edge_times)
            ]
            rtts = [30.0 for _ in edges[1:]]
            observation = SpinObservation(
                packets_seen=len(edges) * 4,
                values_seen={False, True},
                edges_received=edges,
                edges_sorted=list(edges),
                rtts_received_ms=rtts,
                rtts_sorted_ms=list(rtts),
            )
            records.append(
                ConnectionRecord(
                    domain=f"dom{index:07d}.example",
                    host=f"www.dom{index:07d}.example",
                    ip=IpAddr(value=0x0A000001 + index, version=4),
                    ip_version=4,
                    provider_name=_PROVIDERS[index % len(_PROVIDERS)],
                    server_header="LiteSpeed",
                    status=200,
                    success=True,
                    behaviour=SpinBehaviour.SPIN,
                    observation=observation,
                    stack_rtts_ms=list(rtts),
                    negotiated_version=1,
                    week=week,
                )
            )
            index += 1
    return records


def _timed(fn):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, value


def _full_analyze(path: str):
    engine = AnalysisEngine(build_record_folds("failures"))
    with open_record_batches(
        path,
        want_edges_received=engine.needs_edges_received,
        want_edges_sorted=engine.needs_edges_sorted,
    ) as source:
        return engine.run(source.batches()), source.records_read


def _where_analyze(path: str, predicate):
    engine = AnalysisEngine(build_record_folds("failures"))
    stats = QueryStats()
    with open_query_source(
        path,
        predicate,
        stats=stats,
        want_edges_received=engine.needs_edges_received
        or predicate.needs_edges_received,
        want_edges_sorted=engine.needs_edges_sorted,
    ) as source:
        return engine.run(source.batches(), predicate=predicate, stats=stats), stats


def _point_lookup(path: str, name: str):
    predicate = Eq("domain", name)
    stats = QueryStats()
    with open_query_source(path, predicate, stats=stats) as source:
        matched = [
            record
            for batch in source.batches()
            for record in filter_batch(batch, predicate, stats)
        ]
    return matched, stats


def _encoded(records) -> bytes:
    buffer = io.BytesIO()
    write_records_cbr(records, buffer)
    return buffer.getvalue()


def test_query_pushdown(tmp_path):
    records = _build_records()
    n = len(records)
    assert n >= 100_000
    path = tmp_path / "bench.cbr"
    with open(path, "wb") as stream:
        write_records_cbr(records, stream, chunk_records=CHUNK_RECORDS)

    target_week = "cw33-2023"
    week_predicate = Eq("week", target_week)
    target_domain = records[n // 2].domain

    full_elapsed = where_elapsed = point_elapsed = None
    full_results = where_run = point_run = None
    for _ in range(3):
        elapsed, value = _timed(lambda: _full_analyze(str(path)))
        if full_elapsed is None or elapsed < full_elapsed:
            full_elapsed, full_results = elapsed, value
        elapsed, value = _timed(lambda: _where_analyze(str(path), week_predicate))
        if where_elapsed is None or elapsed < where_elapsed:
            where_elapsed, where_run = elapsed, value
        elapsed, value = _timed(lambda: _point_lookup(str(path), target_domain))
        if point_elapsed is None or elapsed < point_elapsed:
            point_elapsed, point_run = elapsed, value

    results, read = full_results
    assert read == n
    where_results, where_stats = where_run
    matched, point_stats = point_run

    # Correctness before speed: the pruned paths must equal brute force
    # over the full decode — identical section results, identical bytes.
    week_records = [r for r in records if week_predicate.matches(r)]
    brute_engine = AnalysisEngine(build_record_folds("failures"))
    brute_results = brute_engine.run([week_records])
    assert where_results == brute_results
    assert where_stats.records_matched == len(week_records) == RECORDS_PER_WEEK
    assert _encoded(matched) == _encoded(
        [r for r in records if r.domain == target_domain]
    )

    where_fraction = where_stats.chunks_selected / where_stats.chunks_total
    point_fraction = point_stats.chunks_selected / point_stats.chunks_total
    where_speedup = full_elapsed / where_elapsed
    point_speedup = full_elapsed / point_elapsed
    full_rate = n / full_elapsed
    where_rate = where_stats.records_scanned / where_elapsed

    payload = {
        "benchmark": "query_pushdown",
        "records": n,
        "chunks_total": where_stats.chunks_total,
        "full": {
            "elapsed_s": round(full_elapsed, 3),
            "records_per_sec": round(full_rate, 1),
        },
        "where": {
            "elapsed_s": round(where_elapsed, 4),
            "chunks_selected": where_stats.chunks_selected,
            "chunk_fraction": round(where_fraction, 4),
            "records_per_sec": round(where_rate, 1),
            "speedup": round(where_speedup, 2),
        },
        "point": {
            "elapsed_s": round(point_elapsed, 4),
            "chunks_selected": point_stats.chunks_selected,
            "chunk_fraction": round(point_fraction, 4),
            "speedup": round(point_speedup, 2),
        },
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"query pushdown over {n} records, {where_stats.chunks_total} chunks:")
    print(f"  full analyze   {full_elapsed:7.3f} s  ({full_rate:.0f} records/s)")
    print(
        f"  --where week   {where_elapsed:7.3f} s  "
        f"({where_stats.chunks_selected} chunks, {where_fraction * 100:.2f} %, "
        f"{where_speedup:.1f}x)"
    )
    print(
        f"  query domain   {point_elapsed:7.3f} s  "
        f"({point_stats.chunks_selected} chunks, {point_fraction * 100:.2f} %, "
        f"{point_speedup:.1f}x)"
    )

    assert where_fraction < MAX_CHUNK_FRACTION, (
        f"selective --where inflated {where_fraction * 100:.2f}% of chunks "
        f"(gate {MAX_CHUNK_FRACTION * 100:.0f}%)"
    )
    assert point_fraction < MAX_CHUNK_FRACTION, (
        f"point lookup inflated {point_fraction * 100:.2f}% of chunks "
        f"(gate {MAX_CHUNK_FRACTION * 100:.0f}%)"
    )
    assert where_speedup >= MIN_SPEEDUP, (
        f"--where only {where_speedup:.1f}x faster than full analyze"
    )
    assert point_speedup >= MIN_SPEEDUP, (
        f"point lookup only {point_speedup:.1f}x faster than full analyze"
    )
