"""Table 4 — IPv6 adoption overview for CW 20, 2023.

Paper reference: the IPv6 host base supporting the spin bit is *larger*
than over IPv4 (62.6 % of CZDS QUIC IPs vs 45.3 %), driven by shared
hosters assigning (nearly) one IPv6 address per domain, while the
toplists show *worse* spin support than over IPv4 (2.3 % of domains,
8.3 % of hosts).
"""

from repro.analysis.report import render_support_overview
from repro.analysis.support import support_overview
from repro.internet.population import ListGroup


def test_table4_ipv6_overview(benchmark, cw20_scan_v6, cw20_scan_v4, population):
    overview6 = benchmark.pedantic(
        support_overview, args=(cw20_scan_v6, population), rounds=1, iterations=1
    )
    overview4 = support_overview(cw20_scan_v4, population)
    print()
    print(render_support_overview(overview6))

    czds6 = overview6.row(ListGroup.CZDS)
    czds4 = overview4.row(ListGroup.CZDS)
    top6 = overview6.row(ListGroup.TOPLISTS)
    top4 = overview4.row(ListGroup.TOPLISTS)

    # Fewer domains resolve over IPv6 than IPv4.
    assert czds6.domains_resolved < czds4.domains_resolved

    # Host-level spin support is broader over IPv6 (paper: 62.6 %).
    assert 0.40 < czds6.ip_spin_share < 0.80
    assert czds6.ip_spin_share > czds4.ip_spin_share

    # Shared hosting uses ~one IPv6 address per domain: the QUIC
    # domains-per-IP density collapses compared to IPv4.
    assert czds6.domains_per_quic_ip < czds4.domains_per_quic_ip

    # Toplist IPv6 spin support is *worse* than IPv4 (paper: 2.3 %
    # of domains vs 6.9 %).
    assert top6.domain_spin_share < top4.domain_spin_share
    assert top6.domain_spin_share < 0.06

    # Zone-view domain spin share stays in the high single digits
    # (paper: 8.2 % CZDS / 10.2 % com/net/org).
    assert 0.04 < czds6.domain_spin_share < 0.14
