"""Section 6 extension — spin-bit accuracy on longer connections.

The paper notes that end-host delays dominate at connection start
("which our approach focuses on, while measurements tend to stabilize
over longer durations") and proposes studying longer connections.  This
bench compares three workloads on identical spin-capable servers:

* the paper's one-shot landing-page fetch;
* a sustained large download (continuous transfer);
* a browsing session with client think time between requests.

Expectation: sustained transfers stabilize to the true RTT after the
warm-up samples; think-time sessions re-inflate with every idle gap.
"""

from repro._util.rng import derive_rng
from repro.analysis.longform import per_sample_deviation_profile, windowed_accuracy
from repro.core.observer import observe_recorder
from repro.core.spin import SpinPolicy
from repro.netsim.delays import UniformDelay
from repro.netsim.path import PathProfile
from repro.web.http3 import ResponsePlan, run_session

RTT_MS = 40.0
CONNECTIONS = 60


def _run_workload(kind: str):
    profile = PathProfile(
        propagation_delay_ms=RTT_MS / 2, jitter=UniformDelay(0.0, 0.5)
    )
    pairs = []
    for seed in range(CONNECTIONS):
        if kind == "one-shot":
            plans = [
                ResponsePlan(
                    server_header="LiteSpeed", think_time_ms=120.0,
                    write_sizes=(30_000,),
                )
            ]
            gaps = None
        elif kind == "sustained":
            plans = [
                ResponsePlan(
                    server_header="LiteSpeed", think_time_ms=120.0,
                    write_sizes=(420_000,),
                )
            ]
            gaps = None
        else:  # browsing
            plans = [
                ResponsePlan(
                    server_header="LiteSpeed", think_time_ms=60.0,
                    write_sizes=(30_000,),
                )
                for _ in range(4)
            ]
            gaps = [350.0] * 3
        result = run_session(
            "www.longform.test",
            plans,
            SpinPolicy.SPIN,
            SpinPolicy.SPIN,
            profile,
            profile,
            derive_rng(seed, "longform", kind),
            think_gaps_ms=gaps,
        )
        observation = observe_recorder(result.recorder)
        pairs.append((observation.rtts_received_ms, result.recorder.stack_rtts_ms()))
    return pairs


def test_long_connections(benchmark):
    workloads = benchmark.pedantic(
        lambda: {k: _run_workload(k) for k in ("one-shot", "sustained", "browsing")},
        rounds=1,
        iterations=1,
    )
    print()
    profiles = {}
    for kind, pairs in workloads.items():
        profile = per_sample_deviation_profile(pairs, max_position=10)
        profiles[kind] = profile
        rendered = ", ".join(f"{m:.2f}" for m in profile.medians[:8])
        print(f"  {kind:10s} median sample/RTT by position: {rendered}")

    sustained = profiles["sustained"]
    browsing = profiles["browsing"]

    # Sustained transfers stabilize to ~1x RTT after warm-up.
    assert sustained.stabilizes(warmup=2, tolerance=1.5)
    assert sustained.medians[-1] < 1.4

    # Browsing sessions keep re-inflating: their steady-state samples
    # stay far above the RTT (idle gaps ride on the spin period).
    assert max(browsing.medians[2:]) > 3.0

    # A patient observer that skips the warm-up gains accuracy on
    # sustained transfers.
    full, windowed = windowed_accuracy(workloads["sustained"], skip_first=2)
    share_full = sum(1 for r in full if abs(r.ratio) <= 1.25) / len(full)
    share_windowed = sum(1 for r in windowed if abs(r.ratio) <= 1.25) / len(windowed)
    print(f"  sustained within-25% share: full={share_full * 100:.0f} % "
          f"windowed={share_windowed * 100:.0f} %")
    assert share_windowed >= share_full
