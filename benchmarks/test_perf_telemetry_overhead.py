"""Telemetry overhead: instrumented vs. bare scan and monitor runs.

The telemetry plane (:mod:`repro.telemetry`) is threaded through every
hot path — the simulator loop, the QUIC endpoints, the flow table —
guarded by ``is None`` checks and pre-bound series objects.  This
benchmark quantifies what turning it on costs: scan throughput
(domains/sec) and monitor ingest (datagrams/sec) are measured with
telemetry off and on, and the slowdown must stay under 10 %.

Measurement discipline matches ``test_perf_fault_overhead``: each
round times the two configurations back to back and only the per-round
on/off *ratio* is kept — both runs of a round share whatever
machine-level drift is active, so the median ratio is far steadier
than comparing two best-of-N absolute times (the previous form of this
benchmark, which regularly reported negative overhead on noisy boxes).

Writes ``BENCH_telemetry_overhead.json`` at the repo root;
``scripts/bench.sh`` appends each run to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.monitor.pipeline import MonitorConfig, MonitorPipeline
from repro.monitor.traffic import TrafficConfig, TrafficMux
from repro.telemetry import Telemetry
from repro.web.scanner import ScanConfig, Scanner

#: Fixed workload sizes; big enough that per-run setup is noise.
BENCH_DOMAINS = 400
BENCH_FLOWS = 120

#: Maximum tolerated telemetry-on slowdown (issue acceptance: <10 %),
#: as the median of per-round on/off ratios.
OVERHEAD_LIMIT = 0.10
ROUNDS = 9

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry_overhead.json"


def _paired_rounds(rounds: int, fn_off, fn_on) -> tuple[list[float], float, float]:
    """Time ``rounds`` alternating (off, on) pairs; keep per-round ratios."""
    ratios: list[float] = []
    best_off = best_on = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn_off()
        elapsed_off = time.perf_counter() - start
        start = time.perf_counter()
        fn_on()
        elapsed_on = time.perf_counter() - start
        ratios.append(elapsed_on / elapsed_off)
        if best_off is None or elapsed_off < best_off:
            best_off = elapsed_off
        if best_on is None or elapsed_on < best_on:
            best_on = elapsed_on
    return ratios, best_off, best_on


def _scan_runner(population, telemetry_on: bool):
    domains = population.domains[:BENCH_DOMAINS]

    def run():
        Scanner(
            population,
            ScanConfig(),
            telemetry=Telemetry() if telemetry_on else None,
        ).scan(week_label="cw20-2023", ip_version=4, domains=domains)

    return run


def _monitor_runner(telemetry_on: bool):
    traffic = TrafficConfig(flows=BENCH_FLOWS, seed=20230520)
    counts = {"datagrams": 0}

    def run():
        telemetry = Telemetry() if telemetry_on else None
        pipeline = MonitorPipeline(MonitorConfig(), telemetry=telemetry)
        mux = TrafficMux(
            traffic,
            metrics=telemetry.registry if telemetry is not None else None,
        )
        counts["datagrams"] = pipeline.process_stream(mux.stream()).datagrams

    return run, counts


def test_telemetry_overhead(population):
    run_scan_off = _scan_runner(population, telemetry_on=False)
    run_scan_on = _scan_runner(population, telemetry_on=True)
    run_monitor_off, _ = _monitor_runner(telemetry_on=False)
    run_monitor_on, counts = _monitor_runner(telemetry_on=True)

    # Warm-up pass: fault in code paths and caches so the first measured
    # round doesn't absorb one-time costs.
    run_scan_on()
    run_monitor_on()

    scan_ratios, scan_off, scan_on = _paired_rounds(
        ROUNDS, run_scan_off, run_scan_on
    )
    monitor_ratios, monitor_off, monitor_on = _paired_rounds(
        ROUNDS, run_monitor_off, run_monitor_on
    )
    datagrams = counts["datagrams"]

    scan_overhead = statistics.median(scan_ratios) - 1.0
    monitor_overhead = statistics.median(monitor_ratios) - 1.0

    payload = {
        "benchmark": "telemetry_overhead",
        "bench_domains": BENCH_DOMAINS,
        "bench_flows": BENCH_FLOWS,
        "rounds": ROUNDS,
        "results": {
            "scan": {
                "best_off_s": round(scan_off, 3),
                "best_on_s": round(scan_on, 3),
                "domains_per_sec_off": round(BENCH_DOMAINS / scan_off, 1),
                "domains_per_sec_on": round(BENCH_DOMAINS / scan_on, 1),
                "round_ratios": [round(r, 4) for r in scan_ratios],
                "overhead_median": round(scan_overhead, 4),
            },
            "monitor": {
                "best_off_s": round(monitor_off, 3),
                "best_on_s": round(monitor_on, 3),
                "datagrams_per_sec_off": round(datagrams / monitor_off, 1),
                "datagrams_per_sec_on": round(datagrams / monitor_on, 1),
                "round_ratios": [round(r, 4) for r in monitor_ratios],
                "overhead_median": round(monitor_overhead, 4),
            },
        },
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(
        f"telemetry overhead ({BENCH_DOMAINS} domains, {BENCH_FLOWS} flows, "
        f"{ROUNDS} rounds):"
    )
    print(
        f"  scan     best off {scan_off:.3f} s  on {scan_on:.3f} s  "
        f"median overhead {scan_overhead * 100:+.1f} %"
    )
    print(
        f"  monitor  best off {monitor_off:.3f} s  on {monitor_on:.3f} s  "
        f"median overhead {monitor_overhead * 100:+.1f} %"
    )

    assert scan_overhead < OVERHEAD_LIMIT, (
        f"scan telemetry overhead {scan_overhead * 100:.1f} % (median of "
        f"{ROUNDS} paired rounds) exceeds {OVERHEAD_LIMIT * 100:.0f} %"
    )
    assert monitor_overhead < OVERHEAD_LIMIT, (
        f"monitor telemetry overhead {monitor_overhead * 100:.1f} % (median "
        f"of {ROUNDS} paired rounds) exceeds {OVERHEAD_LIMIT * 100:.0f} %"
    )
