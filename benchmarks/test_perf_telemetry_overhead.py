"""Telemetry overhead: instrumented vs. bare scan and monitor runs.

The telemetry plane (:mod:`repro.telemetry`) is threaded through every
hot path — the simulator loop, the QUIC endpoints, the flow table —
guarded by ``is None`` checks and pre-bound series objects.  This
benchmark quantifies what turning it on costs: scan throughput
(domains/sec) and monitor ingest (datagrams/sec) are measured with
telemetry off and on, and the slowdown must stay under 10 %.

Writes ``BENCH_telemetry_overhead.json`` at the repo root;
``scripts/bench.sh`` appends each run to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.monitor.pipeline import MonitorConfig, MonitorPipeline
from repro.monitor.traffic import TrafficConfig, TrafficMux
from repro.telemetry import Telemetry
from repro.web.scanner import ScanConfig, Scanner

#: Fixed workload sizes; big enough that per-run setup is noise.
BENCH_DOMAINS = 400
BENCH_FLOWS = 120

#: Maximum tolerated telemetry-on slowdown (issue acceptance: <10 %),
#: measured on best-of-N runs to suppress wall-clock jitter.
OVERHEAD_LIMIT = 0.10
RUNS = 3

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry_overhead.json"


def _best_of(runs: int, fn) -> float:
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _scan_elapsed(population, telemetry_on: bool) -> float:
    domains = population.domains[:BENCH_DOMAINS]

    def run():
        scanner = Scanner(
            population,
            ScanConfig(),
            telemetry=Telemetry() if telemetry_on else None,
        )
        scanner.scan(week_label="cw20-2023", ip_version=4, domains=domains)

    return _best_of(RUNS, run)


def _monitor_elapsed(telemetry_on: bool) -> tuple[float, int]:
    traffic = TrafficConfig(flows=BENCH_FLOWS, seed=20230520)
    datagrams = 0

    def run():
        nonlocal datagrams
        telemetry = Telemetry() if telemetry_on else None
        pipeline = MonitorPipeline(MonitorConfig(), telemetry=telemetry)
        mux = TrafficMux(
            traffic,
            metrics=telemetry.registry if telemetry is not None else None,
        )
        summary = pipeline.process_stream(mux.stream())
        datagrams = summary.datagrams

    return _best_of(RUNS, run), datagrams


def test_telemetry_overhead(population):
    # Warm-up pass: fault in code paths and caches so the first measured
    # configuration doesn't absorb one-time costs.
    _scan_elapsed(population, telemetry_on=True)
    _monitor_elapsed(telemetry_on=True)

    scan_off = _scan_elapsed(population, telemetry_on=False)
    scan_on = _scan_elapsed(population, telemetry_on=True)
    monitor_off, datagrams = _monitor_elapsed(telemetry_on=False)
    monitor_on, _ = _monitor_elapsed(telemetry_on=True)

    scan_overhead = scan_on / scan_off - 1.0
    monitor_overhead = monitor_on / monitor_off - 1.0

    payload = {
        "benchmark": "telemetry_overhead",
        "bench_domains": BENCH_DOMAINS,
        "bench_flows": BENCH_FLOWS,
        "results": {
            "scan": {
                "off_s": round(scan_off, 3),
                "on_s": round(scan_on, 3),
                "domains_per_sec_off": round(BENCH_DOMAINS / scan_off, 1),
                "domains_per_sec_on": round(BENCH_DOMAINS / scan_on, 1),
                "overhead": round(scan_overhead, 4),
            },
            "monitor": {
                "off_s": round(monitor_off, 3),
                "on_s": round(monitor_on, 3),
                "datagrams_per_sec_off": round(datagrams / monitor_off, 1),
                "datagrams_per_sec_on": round(datagrams / monitor_on, 1),
                "overhead": round(monitor_overhead, 4),
            },
        },
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"telemetry overhead ({BENCH_DOMAINS} domains, {BENCH_FLOWS} flows):")
    print(
        f"  scan     off {scan_off:.3f} s  on {scan_on:.3f} s "
        f"({scan_overhead * 100:+.1f} %)"
    )
    print(
        f"  monitor  off {monitor_off:.3f} s  on {monitor_on:.3f} s "
        f"({monitor_overhead * 100:+.1f} %)"
    )

    assert scan_overhead < OVERHEAD_LIMIT, (
        f"scan telemetry overhead {scan_overhead * 100:.1f} % exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f} %"
    )
    assert monitor_overhead < OVERHEAD_LIMIT, (
        f"monitor telemetry overhead {monitor_overhead * 100:.1f} % exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f} %"
    )
