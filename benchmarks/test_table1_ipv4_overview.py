"""Table 1 — IPv4 adoption overview for CW 20, 2023.

Paper reference values (shape targets, not absolute counts):

* domain spin share of QUIC domains: toplists 6.9 %, CZDS 10.2 %,
  com/net/org 11.1 %;
* IP spin share of QUIC IPs: toplists 15.2 %, CZDS 45.3 %,
  com/net/org 46.4 %;
* the zone views pack far more QUIC domains per QUIC IP than the
  toplists (shared hosting).
"""

from repro.analysis.report import render_support_overview
from repro.analysis.support import support_overview
from repro.internet.population import ListGroup


def test_table1_ipv4_overview(benchmark, cw20_scan_v4, population):
    overview = benchmark.pedantic(
        support_overview, args=(cw20_scan_v4, population), rounds=1, iterations=1
    )
    print()
    print(render_support_overview(overview))

    toplists = overview.row(ListGroup.TOPLISTS)
    czds = overview.row(ListGroup.CZDS)
    cno = overview.row(ListGroup.COM_NET_ORG)

    # Funnel sanity at scale.
    assert czds.domains_quic > 2_000
    assert toplists.domains_quic > 500

    # Domain-level spin shares (paper: 6.9 / 10.2 / 11.1 %).
    assert 0.04 < toplists.domain_spin_share < 0.11
    assert 0.07 < czds.domain_spin_share < 0.145
    assert 0.075 < cno.domain_spin_share < 0.15
    # Zone views outspin the toplists; com/net/org >= CZDS overall.
    assert czds.domain_spin_share > toplists.domain_spin_share
    assert cno.domain_spin_share >= czds.domain_spin_share * 0.9

    # IP-level spin shares (paper: ~15 % toplists vs ~45-50 % zones).
    assert 0.06 < toplists.ip_spin_share < 0.25
    assert 0.33 < czds.ip_spin_share < 0.68
    assert czds.ip_spin_share > toplists.ip_spin_share * 1.8

    # Shared hosting density: zone QUIC IPs serve many domains each.
    assert czds.domains_per_quic_ip > 2.0 * toplists.domains_per_quic_ip
