"""Artifact decode + analysis throughput: columnar cbr vs. JSONL.

``repro analyze`` over the paper-scale artifact is dominated by decode
cost: the JSONL path pays ``json.loads`` plus dict indexing per record,
the cbr path amortizes decoding over whole columns.  This benchmark
runs the full single-pass engine (every record section enabled) over
the same records stored both ways, asserts the columnar path is at
least 3x faster and the artifact at least 4x smaller, verifies that
both paths produce identical section results, and writes
``BENCH_analyze_throughput.json`` at the repo root (``scripts/bench.sh``
appends each run to ``BENCH_history.jsonl``).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.analysis import AnalysisEngine, build_record_folds
from repro.artifacts import open_record_batches, write_records

#: Scanned slice feeding the benchmark artifact (repeated probes
#: multiply the record count without growing the population).
BENCH_DOMAINS = 1_500
BENCH_PROBES = 16

#: Floors from the format's design targets: column decode must beat
#: per-record JSON by a wide margin, and varint/delta columns under
#: zlib must undercut the text encoding's size by more than compression
#: of the text itself could.
MIN_SPEEDUP = 3.0
MIN_SIZE_RATIO = 4.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_analyze_throughput.json"


def _analyze(path: str, asdb) -> tuple[dict, int]:
    engine = AnalysisEngine(build_record_folds("all", asdb=asdb))
    with open_record_batches(
        path,
        want_edges_received=engine.needs_edges_received,
        want_edges_sorted=engine.needs_edges_sorted,
    ) as source:
        results = engine.run(source.batches())
        return results, source.records_read


def _timed(fn) -> tuple[float, object]:
    """One GC-quiesced wall-clock measurement of ``fn``."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, value


def test_analyze_throughput(scanner, population, asdb, tmp_path):
    records = []
    for probe in range(BENCH_PROBES):
        dataset = scanner.scan(
            week_label="cw20-2023",
            ip_version=4,
            domains=population.domains[:BENCH_DOMAINS],
            probe=probe,
        )
        records.extend(dataset.connection_records())

    jsonl_path = tmp_path / "bench.jsonl"
    cbr_path = tmp_path / "bench.cbr"
    n = write_records(records, str(jsonl_path))
    assert write_records(records, str(cbr_path)) == n
    jsonl_bytes = jsonl_path.stat().st_size
    cbr_bytes = cbr_path.stat().st_size
    size_ratio = jsonl_bytes / cbr_bytes

    # Interleaved best-of rounds: a load spike on the shared runner hits
    # both formats instead of biasing whichever ran second.
    jsonl_elapsed = cbr_elapsed = None
    jsonl_results = jsonl_read = cbr_results = cbr_read = None
    for _ in range(5):
        elapsed, (results, read) = _timed(lambda: _analyze(str(jsonl_path), asdb))
        if jsonl_elapsed is None or elapsed < jsonl_elapsed:
            jsonl_elapsed, jsonl_results, jsonl_read = elapsed, results, read
        elapsed, (results, read) = _timed(lambda: _analyze(str(cbr_path), asdb))
        if cbr_elapsed is None or elapsed < cbr_elapsed:
            cbr_elapsed, cbr_results, cbr_read = elapsed, results, read
    assert jsonl_read == n
    assert cbr_read == n
    # Same sections, same result objects — the speedup is free.
    assert cbr_results == jsonl_results

    jsonl_rate = n / jsonl_elapsed
    cbr_rate = n / cbr_elapsed
    speedup = cbr_rate / jsonl_rate

    payload = {
        "benchmark": "analyze_throughput",
        "records": n,
        "sections": "all",
        "jsonl": {
            "bytes": jsonl_bytes,
            "elapsed_s": round(jsonl_elapsed, 3),
            "records_per_sec": round(jsonl_rate, 1),
        },
        "cbr": {
            "bytes": cbr_bytes,
            "elapsed_s": round(cbr_elapsed, 3),
            "records_per_sec": round(cbr_rate, 1),
        },
        "speedup": round(speedup, 2),
        "size_ratio": round(size_ratio, 2),
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"all-sections analyze over {n} records:")
    print(
        f"  jsonl {jsonl_rate:9.0f} records/s  ({jsonl_elapsed:.3f} s, "
        f"{jsonl_bytes} B)"
    )
    print(
        f"  cbr   {cbr_rate:9.0f} records/s  ({cbr_elapsed:.3f} s, "
        f"{cbr_bytes} B)"
    )
    print(f"  speedup {speedup:.2f}x (floor {MIN_SPEEDUP}x), "
          f"size {size_ratio:.2f}x smaller (floor {MIN_SIZE_RATIO}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"cbr analyze only {speedup:.2f}x faster than jsonl "
        f"({cbr_rate:.0f} vs {jsonl_rate:.0f} records/s)"
    )
    assert size_ratio >= MIN_SIZE_RATIO, (
        f"cbr artifact only {size_ratio:.2f}x smaller ({cbr_bytes} vs "
        f"{jsonl_bytes} bytes)"
    )
