"""Monitor-pipeline throughput: streaming ingest vs. per-flow replay.

An on-path monitor does not get to re-simulate traffic — packets arrive
from the wire and the service must keep up.  This benchmark captures
one interleaved tap stream from :class:`~repro.monitor.TrafficMux`,
then compares two ways of turning it into per-flow spin metrics:

* **replay** — the pre-monitor path: every flow re-simulated in
  isolation (``replay_single``) and observed through its own flow
  table, i.e. the one-connection-at-a-time cost the scanner pays;
* **monitor** — :class:`~repro.monitor.MonitorPipeline` consuming the
  captured stream once, with the flow table deliberately sized *below*
  the concurrent flow count so LRU eviction and bounded memory are part
  of the measured path.

Asserts the streaming pipeline sustains at least ``MIN_SPEEDUP``x the
replay packet rate and that the flow table stays bounded at
``MAX_FLOWS`` throughout, then writes ``BENCH_monitor_throughput.json``
at the repo root (``scripts/bench.sh`` appends each run to
``BENCH_history.jsonl``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.flow_table import SpinFlowTable
from repro.monitor import MonitorConfig, MonitorPipeline, TrafficConfig, TrafficMux
from repro.monitor.aggregate import WindowConfig

#: Concurrent users on the monitored link.
BENCH_FLOWS = 240

#: Flow-table budget, deliberately below the ~peak concurrency so the
#: benchmark exercises eviction, not just steady-state parsing.
MAX_FLOWS = 64

#: Acceptance floor: streaming ingest must beat per-flow replay by at
#: least this factor (the replay path re-pays full QUIC simulation per
#: connection; the monitor only parses and demultiplexes).
MIN_SPEEDUP = 5.0

_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_monitor_throughput.json"
)


def test_monitor_throughput():
    traffic = TrafficConfig(
        flows=BENCH_FLOWS, seed=1702, arrival_window_ms=8_000.0
    )
    mux = TrafficMux(traffic)
    stream = list(mux.stream())
    datagrams = len(stream)
    assert datagrams > 5_000, "capture unexpectedly small"

    # -- baseline: one-connection-at-a-time replay ---------------------
    start = time.perf_counter()
    replay_packets = 0
    for index in range(BENCH_FLOWS):
        table = SpinFlowTable(short_dcid_length=traffic.short_dcid_length)
        for tap in mux.replay_single(index):
            table.on_server_datagram(tap.time_ms, tap.data)
        replay_packets += table.stats.datagrams
        table.observations()
    replay_elapsed = time.perf_counter() - start
    assert replay_packets == datagrams, "replay lost datagrams"

    # -- streaming monitor over the captured stream --------------------
    config = MonitorConfig(
        max_flows=MAX_FLOWS, window=WindowConfig(window_ms=1_000.0)
    )
    best_elapsed = None
    summary = None
    for _ in range(2):  # best-of-two to shed wall-clock jitter
        pipeline = MonitorPipeline(config)
        start = time.perf_counter()
        for tap in stream:
            pipeline.process(tap.time_ms, tap.data)
        candidate = pipeline.finish()
        elapsed = time.perf_counter() - start
        assert len(pipeline.table.flows) <= MAX_FLOWS
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, summary = elapsed, candidate

    assert summary.datagrams == datagrams
    assert summary.peak_flows <= MAX_FLOWS, "flow table exceeded its bound"
    assert summary.samples["count"] > 0, "no RTT samples retired"

    replay_rate = datagrams / replay_elapsed
    monitor_rate = datagrams / best_elapsed
    speedup = monitor_rate / replay_rate

    payload = {
        "benchmark": "monitor_throughput",
        "flows": BENCH_FLOWS,
        "max_flows": MAX_FLOWS,
        "datagrams": datagrams,
        "results": {
            "replay": {
                "elapsed_s": round(replay_elapsed, 3),
                "packets_per_sec": round(replay_rate, 1),
            },
            "monitor": {
                "elapsed_s": round(best_elapsed, 3),
                "packets_per_sec": round(monitor_rate, 1),
                "peak_table_size": summary.peak_flows,
                "flows_evicted": summary.flows_evicted,
                "rtt_samples": summary.samples["count"],
                "windows": summary.windows,
            },
        },
        "speedup": round(speedup, 2),
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(
        f"monitor throughput over {datagrams} datagrams "
        f"({BENCH_FLOWS} flows, table bound {MAX_FLOWS}):"
    )
    print(
        f"  replay   {replay_rate:10.1f} pkts/s ({replay_elapsed:.3f} s)"
    )
    print(
        f"  monitor  {monitor_rate:10.1f} pkts/s ({best_elapsed:.3f} s), "
        f"peak table {summary.peak_flows}, "
        f"{summary.samples['count']} RTT samples"
    )
    print(f"  speedup  {speedup:.2f}x (floor {MIN_SPEEDUP:.0f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"streaming pipeline only {speedup:.2f}x the replay rate "
        f"({monitor_rate:.0f} vs {replay_rate:.0f} pkts/s)"
    )
