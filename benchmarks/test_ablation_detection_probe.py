"""Ablation — the scanner's spin-detection probe (DESIGN.md Section 7).

Spin *activity* detection requires observing both bit values on a
connection.  A client that tears down immediately after the response
never sees the server reflect its final toggle when the whole response
fits into one congestion-window flight — silently under-counting
spin-capable deployments.  The scanner therefore sends a two-PING probe
before closing.  This ablation quantifies the detection gap the probe
closes on the same population.
"""

from repro.internet.population import PopulationConfig, build_population
from repro.web.scanner import ScanConfig, Scanner


def _spin_domains(dataset):
    return {r.domain.name for r in dataset.results if r.shows_spin_activity}


def test_ablation_detection_probe(benchmark):
    population = build_population(
        PopulationConfig(toplist_domains=0, czds_domains=9_000, seed=77)
    )

    def run_both():
        with_probe = Scanner(population, ScanConfig(final_probe=True)).scan()
        without_probe = Scanner(population, ScanConfig(final_probe=False)).scan()
        return with_probe, without_probe

    with_probe, without_probe = benchmark.pedantic(run_both, rounds=1, iterations=1)

    detected_with = _spin_domains(with_probe)
    detected_without = _spin_domains(without_probe)
    quic_domains = sum(1 for r in with_probe.results if r.quic_support)

    print()
    print(f"QUIC domains: {quic_domains}")
    print(f"spin-active domains with probe:    {len(detected_with)} "
          f"({len(detected_with) / quic_domains * 100:.1f} %)")
    print(f"spin-active domains without probe: {len(detected_without)} "
          f"({len(detected_without) / quic_domains * 100:.1f} %)")
    missed = detected_with - detected_without
    print(f"missed by the teardown-happy client: {len(missed)}")

    # The probe can only widen detection on the same deployment truth.
    # (Per-connection randomness differs slightly between the two scans,
    # so allow a trickle in the other direction.)
    assert len(detected_with) >= len(detected_without)

    # The gap is real but bounded: most spin-capable servers are caught
    # either way (multi-flight responses reflect mid-transfer).
    assert len(detected_with) > 0
    gap_share = (len(detected_with) - len(detected_without)) / len(detected_with)
    assert 0.0 <= gap_share < 0.5
