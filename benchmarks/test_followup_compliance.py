"""Section 6 methodology — two-phase RFC-compliance measurement.

The paper proposes replacing the week-spaced Figure 2 inference with a
focused design: identify spin-enabled domains in one large scan, then
query each ``n = 16`` times within the same week.  The repeated probes
hold the deployment state fixed, so the per-connection disable rate is
measured directly; for compliant RFC 9000 endpoints it should come out
near 1/16 = 6.25 %, well below the RFC 9312 reading of 1/8.
"""

from repro.campaign.followup import FollowUpStudy


def test_followup_compliance(benchmark, population):
    study = FollowUpStudy(population)
    _, candidates = study.identify_candidates(week_label="cw20-2023")
    # Keep the probe phase focused, as the methodology intends.
    subset = candidates[:260]

    result = benchmark.pedantic(
        study.probe, args=(subset, 16), rounds=1, iterations=1
    )
    observed = result.observed_count_distribution()
    print()
    print(
        f"{result.domains_probed} spin-identified domains probed "
        f"{result.probes_per_domain} times each"
    )
    print(f"estimated per-connection disable rate: "
          f"{result.estimated_disable_rate() * 100:.2f} % "
          f"(RFC 9000 mandate: 6.25 %, RFC 9312 reading: 12.5 %)")
    print("spin-probe count distribution (top):")
    for k in range(16, 11, -1):
        print(f"  {k:2d}/16 probes: {observed[k] * 100:5.1f} %")

    assert result.domains_probed == len(subset)
    active = result.active_domains()
    assert len(active) > 100

    # The direct estimate lands near the true 1-in-16 parameter —
    # unlike the longitudinal view, churn cannot bias it.
    rate = result.estimated_disable_rate()
    assert 0.030 < rate < 0.105

    # And clearly identifies the RFC 9000 (1/16) reading over the
    # RFC 9312 (1/8) one.
    assert abs(rate - 1 / 16) < abs(rate - 1 / 8)

    # Most spin-enabled domains spin in 15 or 16 of 16 probes.
    assert observed[15] + observed[16] > 0.5
