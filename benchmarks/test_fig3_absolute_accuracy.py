"""Figure 3 — absolute accuracy: histogram of spin − QUIC mean RTT (ms).

Paper reference (Spin (R) series): 97.7 % of connections overestimate
the stack RTT; 28.8 % are within ±25 ms; 41.3 % overestimate by more
than 200 ms.  Comparing received (R) with packet-number-sorted (S)
order, only 0.28 % of connections change at all, ~99 % of the changes
are below 1 ms, and sorting improves accuracy in 93 % of changed cases.
"""

from repro.analysis.accuracy import accuracy_study
from repro.analysis.report import render_series_summary


def test_fig3_absolute_accuracy(benchmark, accuracy_records):
    study = benchmark.pedantic(
        accuracy_study, args=(accuracy_records,), rounds=1, iterations=1
    )
    series = study.spin_received
    print()
    print(render_series_summary(series))
    impact = study.reordering
    print(
        f"reordering: {impact.connections_compared} compared, "
        f"{impact.changed_share * 100:.2f} % changed, "
        f"{impact.below_1ms_share * 100:.0f} % of changes < 1 ms, "
        f"{impact.improved_share * 100:.0f} % improved by sorting"
    )

    assert series.connections > 400

    # Overestimation dominates (paper: 97.7 %).
    assert series.overestimate_share > 0.88
    assert series.underestimate_share < 0.12

    # Accurate core vs heavy tail (paper: 28.8 % within 25 ms, 41.3 %
    # above 200 ms).
    assert 0.18 < series.within_25ms_share < 0.45
    assert 0.30 < series.over_200ms_share < 0.65

    # The S series barely differs: reordering is a corner case from this
    # vantage point (paper: 0.28 % of connections).
    assert impact.changed_share < 0.02
    sorted_series = study.spin_sorted
    assert abs(sorted_series.within_25ms_share - series.within_25ms_share) < 0.02
