"""Figure 2 — longitudinal RFC-compliance histogram.

Paper reference: of the domains that spun at least once across n = 12
selected weeks and connected in every week, slightly less than 20 % spin
in all 12 weeks; each smaller week-count holds roughly 5-10 %; domains
spin *less* than the RFC 9000 (1-in-16) and RFC 9312 (1-in-8) reference
curves allow, so the disable mandate appears to be followed.
"""

from repro.analysis.compliance import compliance_histogram
from repro.analysis.report import render_compliance_histogram


def test_fig2_rfc_compliance(benchmark, longitudinal_12w):
    histogram = benchmark.pedantic(
        compliance_histogram, args=(longitudinal_12w,), rounds=1, iterations=1
    )
    print()
    print(render_compliance_histogram(histogram))

    assert histogram.n_weeks == 12
    assert histogram.considered_domains > 60

    observed = histogram.observed_shares
    assert abs(sum(observed) - 1.0) < 1e-9

    # Domains spinning in all 12 weeks: a clear mode, but well below
    # the RFC 9000 reference (paper: <20 % observed vs 46 % allowed).
    all_weeks = histogram.share_spinning_every_week
    assert 0.05 < all_weeks < 0.45
    assert all_weeks < histogram.rfc9000_shares[-1] + 0.02

    # The middle of the histogram is populated (churn spreads domains
    # over intermediate week counts) — unlike the reference curves,
    # which have almost no mass below k = 9.
    middle_mass = sum(observed[2:9])
    reference_middle = sum(histogram.rfc9000_shares[2:9])
    assert middle_mass > reference_middle + 0.05

    # No single intermediate bin dominates.
    assert max(observed[:-1]) < 0.35
